"""``repro.serve``: archetype-as-a-service.

The runtime below this package is invoke-per-run: every execution pays
process start-up and recomputes results that are provably identical to
previous runs.  This package turns it into a long-running service — the
FastFlow move of a persistent runtime fronting parallel skeletons:

- :mod:`repro.serve.protocol` — the JSON request schema and the
  content-addressed cache key (the verify digest discipline applied to
  requests: runs are deterministic, so equal canonical requests imply
  equal result digests);
- :mod:`repro.serve.cache` — the on-disk result cache keyed by request
  digest, storing result record, outputs, metrics, and Chrome trace;
- :mod:`repro.serve.executor` — one job's execution: resolve the app in
  :mod:`repro.apps.registry`, run it on the requested backend, digest
  and summarise the result;
- :mod:`repro.serve.pool` — the persistent worker-process pool with
  heartbeat-based dead-worker detection;
- :mod:`repro.serve.scheduler` — the priority job queue with batched
  admission of small jobs;
- :mod:`repro.serve.server` — the HTTP front end tying them together;
- ``python -m repro.serve`` — the CLI (``start``/``submit``/``status``/
  ``result``/``shutdown``/``smoke``).
"""

from repro.serve.protocol import JobRequest, JobState
from repro.serve.server import ServeServer

__all__ = ["JobRequest", "JobState", "ServeServer"]
