"""Command-line entry point for the job server.

Usage::

    python -m repro.serve start --port 8642 --workers 2 --cache-dir CACHE
    python -m repro.serve submit poisson --param nx=64 --machine ibm-sp --wait
    python -m repro.serve status [JOB]
    python -m repro.serve result JOB [--trace trace.json] [--metrics]
    python -m repro.serve apps
    python -m repro.serve shutdown
    python -m repro.serve smoke        # the make serve-smoke CI gate

``start`` runs the server in the foreground until interrupted (or until
a ``shutdown`` request arrives).  Every other command is a thin HTTP
client against ``--server`` (default ``http://127.0.0.1:8642``).
``smoke`` is self-contained: it starts a server on an ephemeral port,
submits the same job twice over real HTTP, asserts the second submission
is answered from the cache with the identical digest and no additional
worker dispatch, verifies a sampled hit bitwise, and shuts down cleanly.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import urllib.error
import urllib.request
from typing import Any

from repro.serve.protocol import DEFAULT_TIMEOUT, ServeError

#: default port the CLI client and `start` agree on
DEFAULT_PORT = 8642


# -- tiny HTTP client ------------------------------------------------------


def _call(server: str, method: str, path: str, body: dict | None = None) -> Any:
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        server.rstrip("/") + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60.0) as resp:
            return json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        payload = exc.read().decode(errors="replace")
        try:
            message = json.loads(payload).get("error", payload)
        except json.JSONDecodeError:
            message = payload
        raise ServeError(f"server returned {exc.code}: {message}") from None
    except urllib.error.URLError as exc:
        raise ServeError(
            f"cannot reach {server!r} ({exc.reason}); is the server running? "
            "(python -m repro.serve start)"
        ) from None


def _wait_for(server: str, job_id: str, timeout: float) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        status = _call(server, "GET", f"/v1/jobs/{job_id}")
        if status["state"] in ("done", "failed"):
            return status
        if time.monotonic() > deadline:
            raise ServeError(f"timed out waiting for {job_id} (last: {status['state']})")
        time.sleep(0.05)


def _parse_params(pairs: list[str]) -> dict:
    """``k=v`` pairs with JSON-typed values (``nx=64`` is the int 64)."""
    params: dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ServeError(f"--param expects key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


# -- commands --------------------------------------------------------------


def cmd_start(args: argparse.Namespace) -> int:
    from repro.serve.server import ServeServer

    server = ServeServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        batch_max=args.batch_max,
        batch_linger=args.batch_linger,
        default_timeout=args.timeout,
        verify_cache_every=args.verify_cache,
    )
    server.start()
    print(f"repro.serve listening on {server.url}")
    print(f"  workers: {server.pool.size}   cache: {server.cache.root}")
    try:
        while not server._stop.wait(0.5):
            pass
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    body: dict[str, Any] = {
        "app": args.app,
        "params": _parse_params(args.param),
        "machine": args.machine,
        "seed": args.seed,
        "backend": args.backend,
        "priority": args.priority,
        "weight": args.weight,
    }
    if args.job_timeout is not None:
        body["timeout"] = args.job_timeout
    status = _call(args.server, "POST", "/v1/jobs", body)
    hit = " (cache hit)" if status.get("cache_hit") else ""
    print(f"{status['id']}: {status['state']}{hit}")
    if args.wait and status["state"] not in ("done", "failed"):
        status = _wait_for(args.server, status["id"], args.wait_timeout)
    if status["state"] == "failed":
        print(f"FAILED: {status.get('error')}", file=sys.stderr)
        return 1
    if args.wait:
        result = _call(args.server, "GET", f"/v1/jobs/{status['id']}/result")
        record = result.get("record") or {}
        print(f"digest:  {record.get('digest')}")
        print(f"elapsed: {record.get('elapsed'):.6g}s (virtual)")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    if args.job:
        print(json.dumps(_call(args.server, "GET", f"/v1/jobs/{args.job}"), indent=2))
        return 0
    health = _call(args.server, "GET", "/v1/health")
    print(f"server:      {health['url']}")
    print(f"queue depth: {health['queue_depth']}")
    print(f"jobs:        {health['jobs'] or '(none yet)'}")
    for w in health["workers"]:
        state = "idle" if w["idle"] else f"running {', '.join(w['jobs'])}"
        liveness = "" if w["alive"] else " [DEAD]"
        print(f"worker {w['id']} (pid {w['pid']}){liveness}: {state}")
    return 0


def cmd_result(args: argparse.Namespace) -> int:
    result = _call(args.server, "GET", f"/v1/jobs/{args.job}/result")
    record = result.get("record") or {}
    print(f"{result['id']}: {result['state']}"
          f"{' (cache hit)' if result.get('cache_hit') else ''}")
    print(f"digest:  {record.get('digest')}")
    print(f"elapsed: {record.get('elapsed'):.6g}s (virtual)")
    summary = record.get("summary") or {}
    if summary:
        print(
            f"traffic: {summary.get('total_messages')} messages, "
            f"{summary.get('total_bytes')} B, "
            f"comm fraction {summary.get('comm_fraction', 0.0):.1%}"
        )
    if args.json:
        print(json.dumps(result, indent=2))
    if args.metrics:
        metrics = _call(args.server, "GET", f"/v1/jobs/{args.job}/metrics")
        print(json.dumps(metrics, indent=2, sort_keys=True))
    if args.trace:
        trace = _call(args.server, "GET", f"/v1/jobs/{args.job}/trace")
        with open(args.trace, "w") as fh:
            json.dump(trace, fh, indent=1)
        print(
            f"wrote {len(trace['traceEvents'])} trace events to {args.trace} "
            "(open in https://ui.perfetto.dev)"
        )
    return 0


def cmd_apps(args: argparse.Namespace) -> int:
    for spec in _call(args.server, "GET", "/v1/apps"):
        print(f"{spec['name']:>10} [{spec['archetype']}] {spec['description']}")
        print(f"{'':>10} defaults: {json.dumps(spec['defaults'], sort_keys=True)}")
    return 0


def cmd_shutdown(args: argparse.Namespace) -> int:
    print(_call(args.server, "POST", "/v1/shutdown")["status"])
    return 0


def cmd_smoke(args: argparse.Namespace) -> int:
    """The ``make serve-smoke`` gate (see module docstring)."""
    from repro.obs.metrics import scoped_registry
    from repro.serve.server import ServeServer

    request = {
        "app": "mergesort",
        "params": {"n": 512},
        "machine": "ibm-sp",
        "backend": "deterministic",
    }
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp, \
            scoped_registry():
        with ServeServer(
            port=0, workers=args.workers, cache_dir=tmp, verify_cache_every=2
        ) as server:
            url = server.url
            first = _call(url, "POST", "/v1/jobs", request)
            first = _wait_for(url, first["id"], 60.0)
            metrics_between = _call(url, "GET", "/v1/metrics")
            second = _call(url, "POST", "/v1/jobs", request)
            if not second.get("cache_hit"):
                failures.append("second identical submission was not a cache hit")
            second = _wait_for(url, second["id"], 60.0)
            d1 = _call(url, "GET", f"/v1/jobs/{first['id']}/result")["record"]["digest"]
            d2 = _call(url, "GET", f"/v1/jobs/{second['id']}/result")["record"]["digest"]
            if d1 != d2:
                failures.append(f"cache-hit digest diverged: {d1[:16]} vs {d2[:16]}")
            metrics_after = _call(url, "GET", "/v1/metrics")
            dispatched = lambda m: m.get("core.serve.jobs.dispatched", {}).get("value", 0)  # noqa: E731
            if dispatched(metrics_after) != dispatched(metrics_between):
                failures.append(
                    "cache hit dispatched a worker "
                    f"({dispatched(metrics_between)} -> {dispatched(metrics_after)})"
                )
            if metrics_after.get("core.serve.cache.hits", {}).get("value") != 1:
                failures.append("cache-hit counter did not increment to 1")
            # Third submission: the sampled (every-2nd) hit re-executes
            # and must reproduce the cached digest bitwise.
            third = _call(url, "POST", "/v1/jobs", request)
            third = _wait_for(url, third["id"], 60.0)
            if not third.get("verified"):
                failures.append(f"sampled hit was not verified: {third}")
            verify_fail = _call(url, "GET", "/v1/metrics").get(
                "core.serve.cache.verify_failures", {}
            ).get("value", 0)
            if verify_fail:
                failures.append(f"{verify_fail} cache verification failure(s)")
            print(
                f"[{'FAIL' if failures else 'ok'}] submit/run/cache-hit/verify "
                f"round-trip on {url}: digest {d1[:16]}, "
                f"hit verified={third.get('verified')}"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("serve smoke: all checks passed (clean shutdown)")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Archetype-as-a-service: job server, client, and smoke gate.",
    )
    parser.add_argument(
        "--server",
        default=f"http://127.0.0.1:{DEFAULT_PORT}",
        help="server URL for client commands (default: %(default)s)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("start", help="run the job server in the foreground")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT)
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--cache-dir", default=".repro-serve-cache")
    p.add_argument("--batch-max", type=int, default=4,
                   help="max small jobs grouped into one dispatch")
    p.add_argument("--batch-linger", type=float, default=0.05,
                   help="seconds a small job waits for batchmates")
    p.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT,
                   help="default per-job timeout (seconds)")
    p.add_argument("--verify-cache", type=int, default=0, metavar="N",
                   help="re-execute every Nth cache hit and assert the "
                   "digest matches bitwise (0: trust the cache)")
    p.set_defaults(fn=cmd_start)

    p = sub.add_parser("submit", help="submit one job")
    p.add_argument("app", help="registered app name (see 'apps')")
    p.add_argument("--param", action="append", default=[], metavar="K=V",
                   help="app parameter override (JSON-typed; repeatable)")
    p.add_argument("--machine", default="ideal")
    p.add_argument("--seed", type=int, default=0,
                   help="schedule seed (fuzzed backend)")
    p.add_argument("--backend", default="deterministic")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--weight", type=float, default=1.0,
                   help="admission cost hint (<= server threshold batches)")
    p.add_argument("--job-timeout", type=float, default=None)
    p.add_argument("--wait", action="store_true", help="poll until done")
    p.add_argument("--wait-timeout", type=float, default=300.0)
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("status", help="server health, or one job's status")
    p.add_argument("job", nargs="?", default=None)
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("result", help="fetch a completed job's result")
    p.add_argument("job")
    p.add_argument("--json", action="store_true", help="dump the full record")
    p.add_argument("--metrics", action="store_true", help="dump the job's metrics")
    p.add_argument("--trace", metavar="PATH",
                   help="write the job's Chrome trace document to PATH")
    p.set_defaults(fn=cmd_result)

    p = sub.add_parser("apps", help="list the server's app registry")
    p.set_defaults(fn=cmd_apps)

    p = sub.add_parser("shutdown", help="stop the server")
    p.set_defaults(fn=cmd_shutdown)

    p = sub.add_parser("smoke", help="self-contained CI gate (ephemeral server)")
    p.add_argument("--workers", type=int, default=1)
    p.set_defaults(fn=cmd_smoke)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
