"""The persistent worker pool: reusable processes executing job batches.

The FastFlow shape: instead of paying process start-up per run, the
server keeps ``nworkers`` OS processes alive for its whole lifetime and
feeds each one batches of jobs through a per-worker inbox queue.  Inside
a worker a job runs exactly as it would inline — through
:func:`repro.serve.executor.execute`, which resolves the app registry
and the backend registry, so a worker can itself fan out to the PR 5
process-parallel backend (``backend="parallel"`` forks rank processes
from the worker).

Liveness: each worker publishes a heartbeat (a shared double it bumps
from a daemon thread a few times a second, plus between jobs).  The
parent combines process liveness (``Process.is_alive`` — catches hard
kills) with heartbeat age (catches a wedged-but-alive worker) to decide
a worker is dead; the server then requeues the worker's in-flight jobs
(bounded retries) and spawns a replacement.  This mirrors the dead-rank
detection the parallel backend does per run, lifted to pool lifetime.

Result records travel back on one shared queue as plain tuples:
``("done", worker, job_id, outcome)``, ``("error", worker, job_id,
message)``, and a trailing ``("batch-done", worker, batch_id)`` that
lets the server mark the worker idle again.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from queue import Empty

from repro.errors import ReproError
from repro.obs.metrics import counter_handle
from repro.serve.protocol import JobRequest

_RESTARTS = counter_handle(
    "core.serve.workers.restarts", help="dead workers replaced by the pool"
)

#: seconds between worker heartbeat bumps
_BEAT = 0.1
#: heartbeat age (seconds) past which an *alive* worker counts as wedged
DEFAULT_HEARTBEAT_TIMEOUT = 30.0

_WORKER_IDS = itertools.count()


def _portable_message(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _worker_main(worker_id: int, inbox, results, heartbeat) -> None:
    """One pool worker: drain batches from the inbox until the sentinel.

    The heartbeat thread keeps beating through long job computations —
    a busy worker is *alive*, and must never be mistaken for a dead one.
    """
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            heartbeat.value = time.monotonic()
            time.sleep(_BEAT)

    threading.Thread(target=beat, daemon=True, name="serve-heartbeat").start()

    from repro.serve.executor import execute

    try:
        while True:
            item = inbox.get()
            if item is None:
                return
            batch_id, jobs = item
            for job_id, request_json in jobs:
                try:
                    request = JobRequest.from_json(request_json).validated()
                    outcome = execute(request)
                    results.put(("done", worker_id, job_id, outcome))
                except BaseException as exc:  # noqa: BLE001 - reported upstream
                    results.put(("error", worker_id, job_id, _portable_message(exc)))
            results.put(("batch-done", worker_id, batch_id))
    finally:
        stop.set()


class _Worker:
    """Parent-side handle for one worker process."""

    def __init__(self, ctx, results):
        self.id = next(_WORKER_IDS)
        self.inbox = ctx.Queue()
        self.heartbeat = ctx.Value("d", time.monotonic(), lock=False)
        self.process = ctx.Process(
            target=_worker_main,
            args=(self.id, self.inbox, results, self.heartbeat),
            name=f"repro-serve-worker-{self.id}",
            daemon=True,
        )
        #: batch currently dispatched to this worker, or None when idle:
        #: (batch_id, {job_id, ...} outstanding)
        self.batch: tuple[int, set[str]] | None = None
        self.process.start()

    @property
    def idle(self) -> bool:
        return self.batch is None

    def alive(self, heartbeat_timeout: float) -> bool:
        if not self.process.is_alive():
            return False
        return time.monotonic() - self.heartbeat.value <= heartbeat_timeout

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(5.0)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.kill()
            self.process.join(5.0)


class WorkerPool:
    """A fixed-size pool of persistent job-executing processes."""

    def __init__(
        self,
        nworkers: int,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        start_method: str | None = None,
    ):
        import multiprocessing as mp

        if nworkers < 1:
            raise ReproError(f"pool needs >= 1 worker, got {nworkers}")
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self.heartbeat_timeout = heartbeat_timeout
        self.results = self._ctx.Queue()
        self._workers: dict[int, _Worker] = {}
        self._batch_ids = itertools.count()
        self._stopped = False
        for _ in range(nworkers):
            worker = _Worker(self._ctx, self.results)
            self._workers[worker.id] = worker

    # -- introspection -----------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._workers)

    def workers(self) -> list[_Worker]:
        return list(self._workers.values())

    def worker(self, worker_id: int) -> _Worker | None:
        return self._workers.get(worker_id)

    def idle_worker(self) -> _Worker | None:
        for worker in self._workers.values():
            if worker.idle and worker.process.is_alive():
                return worker
        return None

    def pids(self) -> dict[int, int | None]:
        return {wid: w.process.pid for wid, w in self._workers.items()}

    # -- dispatch ----------------------------------------------------------
    def dispatch(self, worker: _Worker, jobs: list[tuple[str, dict]]) -> int:
        """Send a batch to *worker*; returns the batch id."""
        if not worker.idle:
            raise ReproError(f"worker {worker.id} already has a batch in flight")
        batch_id = next(self._batch_ids)
        worker.batch = (batch_id, {job_id for job_id, _ in jobs})
        worker.inbox.put((batch_id, jobs))
        return batch_id

    def dead_workers(self) -> list[_Worker]:
        """Busy-or-idle workers that are gone or wedged (see module doc)."""
        return [
            w
            for w in self._workers.values()
            if not w.alive(self.heartbeat_timeout)
        ]

    def replace(self, worker: _Worker) -> _Worker:
        """Kill *worker* (if needed) and spawn a fresh one in its slot.

        Returns the replacement; the caller owns requeueing whatever the
        dead worker still had outstanding (``worker.batch``).
        """
        worker.kill()
        self._workers.pop(worker.id, None)
        fresh = _Worker(self._ctx, self.results)
        self._workers[fresh.id] = fresh
        _RESTARTS.inc()
        return fresh

    def poll(self, timeout: float = 0.0) -> list[tuple]:
        """Drain available result records (waiting up to *timeout* for one)."""
        records: list[tuple] = []
        deadline = time.monotonic() + timeout
        while True:
            try:
                remaining = max(0.0, deadline - time.monotonic())
                if remaining > 0 and not records:
                    records.append(self.results.get(timeout=remaining))
                else:
                    records.append(self.results.get_nowait())
            except Empty:
                return records

    def mark_batch_done(self, worker_id: int, batch_id: int) -> None:
        worker = self._workers.get(worker_id)
        if worker is not None and worker.batch and worker.batch[0] == batch_id:
            worker.batch = None

    # -- shutdown ----------------------------------------------------------
    def stop(self, grace: float = 5.0) -> None:
        """Sentinel every inbox, join, and terminate stragglers."""
        if self._stopped:
            return
        self._stopped = True
        for worker in self._workers.values():
            try:
                worker.inbox.put(None)
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        deadline = time.monotonic() + grace
        for worker in self._workers.values():
            worker.process.join(max(0.0, deadline - time.monotonic()))
        for worker in self._workers.values():
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(2.0)
        # Release queue feeder threads so interpreter shutdown is clean.
        for worker in self._workers.values():
            try:
                worker.inbox.close()
            except Exception:  # noqa: BLE001
                pass
        try:
            self.results.close()
        except Exception:  # noqa: BLE001
            pass


def fork_available() -> bool:
    """True when the host supports the fork start method (test gating)."""
    import multiprocessing as mp

    return "fork" in mp.get_all_start_methods() and os.name == "posix"
