"""Job bookkeeping and the admission queue with small-job batching.

The queue orders jobs by ``(-priority, submission sequence)`` — strict
priority, FIFO within a priority.  Admission is *batched*: when the
dispatcher asks for work, a job at or below the small-weight threshold
pulls further small jobs (in queue order) into the same dispatch, up to
``batch_max`` — one worker wake-up, one IPC round-trip, and one metrics
merge for a whole group of cheap runs.  A job above the threshold always
dispatches alone.  Grouping never reorders: every job in a batch was
ahead of every job left behind.

State discipline (the Danelutto–Torquati access-pattern vocabulary the
pipeline archetype uses): the queue and the job table are *serial* state
— every mutation happens under one lock, from whichever server thread
(HTTP handler or dispatcher) holds it; workers never touch either.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.serve.protocol import JobRequest, JobState


@dataclass
class Job:
    """One submitted job's server-side record."""

    id: str
    request: JobRequest
    key: str
    state: JobState = JobState.QUEUED
    #: dispatch attempts so far (requeues after worker death increment it)
    attempts: int = 0
    cache_hit: bool = False
    #: set when a sampled cache hit was re-executed and digest-checked
    verified: bool = False
    error: str | None = None
    worker: int | None = None
    submitted_at: float = field(default_factory=time.time)
    #: monotonic timestamp of the last (re)queueing — the admission
    #: linger window is measured from here
    queued_mono: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    #: completed result record (also what the cache stores)
    record: dict[str, Any] | None = None
    #: deadline (monotonic) while running; None when not running
    deadline: float | None = None
    #: internal: cached-digest to check when this run verifies a hit
    expect_digest: str | None = None

    def status_json(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "state": self.state.value,
            "app": self.request.app,
            "key": self.key,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "verified": self.verified,
            "error": self.error,
            "worker": self.worker,
        }


class AdmissionQueue:
    """Priority queue with batched admission (thread-safe)."""

    def __init__(self, batch_max: int = 4, small_weight: float = 1.0):
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self.batch_max = batch_max
        self.small_weight = small_weight
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()

    def push(self, job: Job) -> None:
        with self._lock:
            heapq.heappush(self._heap, (-job.request.priority, next(self._seq), job))

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def peek(self) -> Job | None:
        """The job the next :meth:`pop_batch` would start with."""
        with self._lock:
            return self._heap[0][2] if self._heap else None

    def pop_batch(self) -> list[Job]:
        """The next dispatch: one big job, or up to ``batch_max`` small ones.

        Returns ``[]`` when the queue is empty.
        """
        with self._lock:
            if not self._heap:
                return []
            batch = [heapq.heappop(self._heap)[2]]
            if batch[0].request.weight > self.small_weight:
                return batch
            while (
                len(batch) < self.batch_max
                and self._heap
                and self._heap[0][2].request.weight <= self.small_weight
            ):
                batch.append(heapq.heappop(self._heap)[2])
            return batch
