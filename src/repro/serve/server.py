"""The job server: HTTP front end over queue + pool + cache.

One :class:`ServeServer` owns three moving parts and two threads:

- the **admission queue** (:mod:`repro.serve.scheduler`) holding
  submitted jobs in priority order with small-job batching;
- the **worker pool** (:mod:`repro.serve.pool`) of persistent processes
  that actually execute jobs;
- the **result cache** (:mod:`repro.serve.cache`), consulted at submit
  time — a hit completes the job instantly, with no worker dispatch,
  and is provably correct because identical canonical requests yield
  identical digests (``verify_cache_every=N`` re-executes every Nth hit
  and asserts exactly that, bitwise);
- an **HTTP thread** (stdlib ``ThreadingHTTPServer``) serving the JSON
  API, and a **dispatcher thread** running the control loop: drain
  worker results, detect dead workers and requeue their jobs (bounded
  retries), enforce per-job timeouts, and dispatch batches to idle
  workers.

Every mutation of the job table goes through one lock (serial state, in
the pipeline archetype's access-pattern vocabulary); workers share
nothing with the server but queues.

HTTP API (all bodies JSON)::

    POST /v1/jobs             submit; body is a JobRequest; -> job status
    GET  /v1/jobs             all job statuses
    GET  /v1/jobs/<id>        one job's status
    GET  /v1/jobs/<id>/result completed record + JSON-rendered outputs
    GET  /v1/jobs/<id>/trace  the job's Chrome trace document
    GET  /v1/jobs/<id>/metrics the job's metrics snapshot
    GET  /v1/apps             the app registry (names, params, defaults)
    GET  /v1/health           workers, queue depth, job counts
    GET  /v1/metrics          the server's metrics registry snapshot
    POST /v1/shutdown         stop the server
"""

from __future__ import annotations

import itertools
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.apps import registry
from repro.obs.metrics import (
    COUNT_BUCKETS,
    counter_handle,
    gauge_handle,
    get_registry,
    histogram_handle,
)
from repro.serve.cache import ResultCache
from repro.serve.executor import JobOutcome, jsonable_outputs
from repro.serve.pool import WorkerPool
from repro.serve.protocol import (
    DEFAULT_TIMEOUT,
    JobRequest,
    JobState,
    ServeError,
    dumps,
    loads,
)
from repro.serve.scheduler import AdmissionQueue, Job

_SUBMITTED = counter_handle("core.serve.jobs.submitted", help="jobs accepted")
_COMPLETED = counter_handle("core.serve.jobs.completed", help="jobs finished ok")
_FAILED = counter_handle("core.serve.jobs.failed", help="jobs finished in error")
_REQUEUED = counter_handle(
    "core.serve.jobs.requeued", help="jobs re-admitted after a worker died"
)
_TIMEOUTS = counter_handle("core.serve.jobs.timeouts", help="jobs killed on deadline")
_DISPATCHED = counter_handle(
    "core.serve.jobs.dispatched", help="jobs handed to a worker"
)
_BATCHES = counter_handle(
    "core.serve.batches.dispatched", help="worker dispatches (batches)"
)
_BATCH_SIZE = histogram_handle(
    "core.serve.batch.size", buckets=COUNT_BUCKETS, help="jobs per dispatch"
)
_HITS = counter_handle("core.serve.cache.hits", help="requests served from cache")
_MISSES = counter_handle("core.serve.cache.misses", help="requests that had to run")
_VERIFIED = counter_handle(
    "core.serve.cache.verified", help="sampled hits re-executed, digest equal"
)
_VERIFY_FAILURES = counter_handle(
    "core.serve.cache.verify_failures",
    help="sampled hits whose re-execution diverged (should stay 0 forever)",
)
_DEPTH = gauge_handle("core.serve.queue.depth", help="jobs waiting for a worker")

#: dispatcher tick (seconds): results latency and failure-detection grain
_TICK = 0.02

_JOB_IDS = itertools.count(1)


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, serve: "ServeServer"):
        self.serve = serve
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # Quiet by default: the request log is noise in tests and CI.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _reply(self, status: int, payload: Any) -> None:
        body = dumps(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        return loads(self.rfile.read(length)) if length else {}

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
        serve = self.server.serve
        try:
            if self.path == "/v1/jobs":
                job = serve.submit(self._body())
                self._reply(200, job.status_json())
            elif self.path == "/v1/shutdown":
                self._reply(200, {"status": "stopping"})
                serve.request_shutdown()
            else:
                self._reply(404, {"error": f"no such endpoint {self.path}"})
        except ServeError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        serve = self.server.serve
        try:
            parts = [p for p in self.path.split("/") if p]
            if parts == ["v1", "health"]:
                self._reply(200, serve.health())
            elif parts == ["v1", "metrics"]:
                self._reply(200, get_registry().snapshot())
            elif parts == ["v1", "apps"]:
                self._reply(200, serve.apps())
            elif parts == ["v1", "jobs"]:
                self._reply(200, [j.status_json() for j in serve.jobs()])
            elif len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
                job_id = parts[2]
                kind = parts[3] if len(parts) > 3 else "status"
                status, payload = serve.job_view(job_id, kind)
                self._reply(status, payload)
            else:
                self._reply(404, {"error": f"no such endpoint {self.path}"})
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})


class ServeServer:
    """The archetype job server (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        cache_dir: str = ".repro-serve-cache",
        batch_max: int = 4,
        batch_linger: float = 0.05,
        small_weight: float = 1.0,
        default_timeout: float = DEFAULT_TIMEOUT,
        max_retries: int = 2,
        verify_cache_every: int = 0,
        heartbeat_timeout: float | None = None,
        start_method: str | None = None,
    ):
        self.cache = ResultCache(cache_dir)
        self.queue = AdmissionQueue(batch_max=batch_max, small_weight=small_weight)
        pool_kwargs = {} if heartbeat_timeout is None else {"heartbeat_timeout": heartbeat_timeout}
        self.pool = WorkerPool(workers, start_method=start_method, **pool_kwargs)
        self.batch_linger = batch_linger
        self.default_timeout = default_timeout
        self.max_retries = max_retries
        self.verify_cache_every = verify_cache_every
        self._jobs: dict[str, Job] = {}
        self._lock = threading.RLock()
        self._hits = 0
        self._stop = threading.Event()
        self._httpd = _HTTPServer((host, port), self)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True, name="serve-http"
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, daemon=True, name="serve-dispatch"
        )
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServeServer":
        self._started = True
        self._http_thread.start()
        self._dispatcher.start()
        return self

    def request_shutdown(self) -> None:
        """Ask the server to stop (safe from handler threads)."""
        threading.Thread(target=self.stop, daemon=True, name="serve-stop").start()

    def stop(self) -> None:
        """Stop accepting, stop dispatching, and tear the pool down."""
        if self._stop.is_set():
            return
        self._stop.set()
        if self._started:
            self._dispatcher.join(10.0)
        self._httpd.shutdown()
        self._httpd.server_close()
        self.pool.stop()

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission and views ----------------------------------------------
    def submit(self, body: dict[str, Any]) -> Job:
        """Validate, consult the cache, and either complete or enqueue."""
        request = JobRequest.from_json(body).validated()
        key = request.cache_key()
        job = Job(id=f"job-{next(_JOB_IDS):06d}", request=request, key=key)
        with self._lock:
            self._jobs[job.id] = job
            _SUBMITTED.inc()
            cached = self.cache.lookup(key)
            if cached is not None:
                _HITS.inc()
                self._hits += 1
                job.cache_hit = True
                if self.verify_cache_every and self._hits % self.verify_cache_every == 0:
                    # Sampled hit: re-execute and assert digest equality
                    # instead of answering from the cache.
                    job.expect_digest = cached.digest
                    self._enqueue(job)
                else:
                    job.record = cached.record
                    job.state = JobState.DONE
                    job.finished_at = time.time()
            else:
                _MISSES.inc()
                self._enqueue(job)
        return job

    def _enqueue(self, job: Job) -> None:
        job.state = JobState.QUEUED
        job.worker = None
        job.deadline = None
        job.queued_mono = time.monotonic()
        self.queue.push(job)
        _DEPTH.set(len(self.queue))

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def job_view(self, job_id: str, kind: str) -> tuple[int, Any]:
        """(HTTP status, payload) for one job's ``status``/``result``/
        ``trace``/``metrics`` view."""
        job = self.job(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        if kind == "status":
            return 200, job.status_json()
        if kind not in ("result", "trace", "metrics"):
            return 404, {"error": f"no such job view {kind!r}"}
        if job.state is JobState.FAILED:
            return 410, {"error": job.error or "job failed", **job.status_json()}
        if job.state is not JobState.DONE:
            return 409, {"error": f"job is {job.state.value}", **job.status_json()}
        cached = self.cache.lookup(job.key)
        if kind == "result":
            payload = dict(job.status_json(), record=job.record)
            if cached is not None:
                payload["outputs"] = jsonable_outputs(cached.outputs())
            return 200, payload
        if cached is None:
            return 404, {"error": "cache entry for this job has been evicted"}
        if kind == "trace":
            trace = cached.trace()
            if trace is None:
                return 404, {"error": "job ran untraced"}
            return 200, trace
        return 200, cached.metrics()

    def apps(self) -> list[dict[str, Any]]:
        return [
            {
                "name": spec.name,
                "archetype": spec.archetype,
                "description": spec.description,
                "defaults": dict(spec.defaults),
            }
            for spec in registry.specs()
        ]

    def health(self) -> dict[str, Any]:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
            return {
                "status": "ok",
                "url": self.url,
                "queue_depth": len(self.queue),
                "jobs": states,
                "workers": [
                    {
                        "id": w.id,
                        "pid": w.process.pid,
                        "alive": w.process.is_alive(),
                        "idle": w.idle,
                        "jobs": sorted(w.batch[1]) if w.batch else [],
                    }
                    for w in self.pool.workers()
                ],
            }

    # -- the control loop --------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            records = self.pool.poll(timeout=_TICK)
            with self._lock:
                for record in records:
                    self._handle_record(record)
                self._reap_dead_workers()
                self._enforce_timeouts()
                self._dispatch_ready()
                _DEPTH.set(len(self.queue))

    def _handle_record(self, record: tuple) -> None:
        kind, worker_id, *rest = record
        worker = self.pool.worker(worker_id)
        if kind == "batch-done":
            self.pool.mark_batch_done(worker_id, rest[0])
            return
        job_id, payload = rest
        if worker is not None and worker.batch is not None:
            worker.batch[1].discard(job_id)
        job = self._jobs.get(job_id)
        if job is None or job.state in (JobState.DONE, JobState.FAILED):
            return
        if kind == "done":
            self._complete(job, payload)
        else:
            self._fail(job, str(payload))

    def _complete(self, job: Job, outcome: JobOutcome) -> None:
        if job.expect_digest is not None and outcome.digest != job.expect_digest:
            _VERIFY_FAILURES.inc()
            self._fail(
                job,
                "cache verification failed: re-execution produced digest "
                f"{outcome.digest[:16]}, cache holds {job.expect_digest[:16]} "
                "(determinism violation — do not trust this cache)",
            )
            return
        if job.expect_digest is not None:
            job.verified = True
            _VERIFIED.inc()
        record = {
            "request": job.request.to_json(),
            "digest": outcome.digest,
            "times": outcome.times,
            "elapsed": outcome.elapsed,
            "summary": outcome.summary,
            "host_seconds": outcome.host_seconds,
        }
        self.cache.store(
            job.key, record, outcome.values, outcome.metrics, outcome.trace
        )
        get_registry().merge_snapshot(outcome.metrics)
        job.record = dict(record, key=job.key)
        job.state = JobState.DONE
        job.finished_at = time.time()
        job.deadline = None
        _COMPLETED.inc()

    def _fail(self, job: Job, error: str) -> None:
        job.state = JobState.FAILED
        job.error = error
        job.finished_at = time.time()
        job.deadline = None
        _FAILED.inc()

    def _requeue_outstanding(self, worker, reason: str) -> None:
        """Re-admit (or fail) whatever a dead/killed worker still owned."""
        if worker.batch is None:
            return
        for job_id in sorted(worker.batch[1]):
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.RUNNING:
                continue
            if job.attempts > self.max_retries:
                self._fail(job, f"{reason} (gave up after {job.attempts} attempts)")
            else:
                _REQUEUED.inc()
                self._enqueue(job)
        worker.batch = None

    def _reap_dead_workers(self) -> None:
        for worker in self.pool.dead_workers():
            self._requeue_outstanding(worker, f"worker {worker.id} died")
            self.pool.replace(worker)

    def _enforce_timeouts(self) -> None:
        now = time.monotonic()
        for worker in self.pool.workers():
            if worker.batch is None:
                continue
            expired = None
            for job_id in sorted(worker.batch[1]):
                job = self._jobs.get(job_id)
                if (
                    job is not None
                    and job.state is JobState.RUNNING
                    and job.deadline is not None
                    and now > job.deadline
                ):
                    expired = job
                    break
            if expired is None:
                continue
            _TIMEOUTS.inc()
            worker.batch[1].discard(expired.id)
            self._fail(
                expired,
                f"timed out after {expired.request.timeout or self.default_timeout:g}s",
            )
            # The worker is wedged on the expired job: replace it and
            # give its innocent batchmates another chance.
            self._requeue_outstanding(worker, f"worker {worker.id} killed on timeout")
            self.pool.replace(worker)

    def _dispatch_ready(self) -> None:
        while True:
            worker = self.pool.idle_worker()
            if worker is None:
                return
            head = self.queue.peek()
            if head is None:
                return
            # Admission linger: hold a small head job briefly so later
            # small submissions can share its dispatch.
            if (
                head.request.weight <= self.queue.small_weight
                and len(self.queue) < self.queue.batch_max
                and time.monotonic() - head.queued_mono < self.batch_linger
            ):
                return
            batch = [j for j in self.queue.pop_batch() if j.state is JobState.QUEUED]
            if not batch:
                continue
            now = time.monotonic()
            for job in batch:
                job.state = JobState.RUNNING
                job.worker = worker.id
                job.attempts += 1
                job.started_at = job.started_at or time.time()
                job.deadline = now + (job.request.timeout or self.default_timeout)
                _DISPATCHED.inc()
            self.pool.dispatch(
                worker, [(j.id, j.request.to_json()) for j in batch]
            )
            _BATCHES.inc()
            _BATCH_SIZE.observe(len(batch))
