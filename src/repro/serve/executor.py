"""One job's execution: run, digest, summarise, package.

This is the code a pool worker runs per job (and what ``--verify-cache``
re-runs to re-derive a cached digest).  It resolves the app through
:mod:`repro.apps.registry`, maps the requested backend onto the runtime
— ``fuzzed`` wraps the run in :func:`repro.runtime.spmd.fuzzed_schedule`
with the request's seed, every other name goes through the backend
registry's mode resolution — and reduces the :class:`RunResult` to a
wire-friendly outcome: the verify digest (the cache key's counterpart on
the result side), per-rank virtual clocks, a trace summary, the Chrome
trace document, and the run's metrics snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.apps import registry
from repro.machines.catalog import get_machine
from repro.obs.chrome import chrome_trace
from repro.obs.metrics import counter_handle, scoped_registry
from repro.runtime import backends
from repro.runtime.spmd import RunResult, fuzzed_schedule
from repro.serve.protocol import JobRequest
from repro.trace.analysis import summarize
from repro.verify.digest import value_digest

_TUNED_RUNS = counter_handle(
    "core.serve.jobs.tuned", help="jobs executed under a pinned tuned config"
)


@dataclass
class JobOutcome:
    """Everything a completed run ships back to the server."""

    digest: str
    times: list[float]
    elapsed: float
    #: per-rank body return values (arbitrary picklable objects)
    values: list[Any]
    #: plain-data trace summary (per-rank compute/comm/idle and totals)
    summary: dict[str, Any]
    #: validated Chrome trace-event document (``None`` when untraced)
    trace: dict[str, Any] | None
    #: the run's metrics snapshot (shipped per job, merged server-side)
    metrics: dict[str, dict]
    #: host seconds the run took inside the worker
    host_seconds: float = 0.0
    #: wall-clock attempt count is tracked server-side; this field lets
    #: cache records carry it without a second schema
    extra: dict[str, Any] = field(default_factory=dict)


def _summary_json(result: RunResult) -> dict[str, Any]:
    if result.tracer is None:
        return {}
    summary = summarize(result.tracer)
    return {
        "ranks": [
            {
                "rank": rs.rank,
                "compute_time": rs.compute_time,
                "comm_time": rs.comm_time,
                "idle_time": rs.idle_time,
                "messages_sent": rs.messages_sent,
                "messages_received": rs.messages_received,
                "bytes_sent": rs.bytes_sent,
                "bytes_received": rs.bytes_received,
            }
            for rs in summary.ranks
        ],
        "total_messages": summary.total_messages,
        "total_bytes": summary.total_bytes,
        "total_idle_time": summary.total_idle_time,
        "comm_fraction": summary.comm_fraction(),
    }


def jsonable_outputs(values: list[Any], max_elements: int = 64) -> list[Any]:
    """A JSON-safe rendering of per-rank outputs for HTTP responses.

    Small ndarrays are inlined as lists; large ones are summarised by
    dtype/shape (the full objects live in the cache's pickle, and the
    digest is the fidelity guarantee).
    """

    def render(value: Any) -> Any:
        if isinstance(value, np.ndarray):
            if value.size <= max_elements:
                return {"dtype": str(value.dtype), "shape": list(value.shape), "data": value.tolist()}
            return {"dtype": str(value.dtype), "shape": list(value.shape), "summary": True}
        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, (list, tuple)):
            return [render(v) for v in value]
        if isinstance(value, dict):
            return {str(k): render(v) for k, v in value.items()}
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        return repr(value)

    return [render(v) for v in values]


def result_digest(result: RunResult) -> str:
    """The run's verify digest: times and values, canonically encoded."""
    return value_digest([result.times, result.values])


def execute(request: JobRequest, trace: bool = True) -> JobOutcome:
    """Run *request* to completion in this process and package the outcome.

    The run happens under a scoped metrics registry so the snapshot
    contains exactly this job's instrumentation — the server merges
    per-job snapshots into its own registry.

    The tuned configuration applied is exactly the one pinned into the
    request at admission (see :mod:`repro.serve.protocol`): a pinned
    config is applied, and an empty/absent one runs with consultation
    suppressed, so this worker's local catalog can never shift a result
    away from what the cache key promises.
    """
    from repro.tune import catalog as tune_catalog

    spec = registry.get(request.app)
    machine = get_machine(request.machine)
    if request.tuned:
        tuned_scope = tune_catalog.applying(
            tune_catalog.TunedConfig.from_dict(request.tuned)
        )
    else:
        tuned_scope = tune_catalog.disabled()
    started = time.perf_counter()
    with scoped_registry() as job_registry, tuned_scope:
        if request.tuned:
            _TUNED_RUNS.inc()
        if request.backend == "fuzzed":
            with fuzzed_schedule(request.seed):
                result = spec.run(
                    request.params, machine=machine, mode="sequential", trace=trace
                )
        else:
            result = spec.run(
                request.params,
                machine=machine,
                mode=backends.get(request.backend).mode,
                trace=trace,
            )
        snapshot = job_registry.snapshot()
    host_seconds = time.perf_counter() - started
    return JobOutcome(
        digest=result_digest(result),
        times=list(result.times),
        elapsed=result.elapsed,
        values=list(result.values),
        summary=_summary_json(result),
        trace=chrome_trace(result.tracer) if result.tracer is not None else None,
        metrics=snapshot,
        host_seconds=host_seconds,
    )
