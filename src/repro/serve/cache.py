"""Content-addressed result cache.

Layout: ``root/<key[:2]>/<key>/`` holds one completed run —

- ``result.json`` — the canonical request, its verify digest, per-rank
  virtual clocks, elapsed makespan, and the trace summary;
- ``outputs.pkl`` — the per-rank return values (pickle: outputs are
  arbitrary Python objects, often ndarrays);
- ``metrics.json`` — the job's metrics snapshot;
- ``trace.json`` — the Chrome trace-event document (when traced).

Entries are written into a temporary sibling directory and renamed into
place, so readers never observe a half-written entry; a second writer
racing on the same key loses the rename and discards its copy — both
copies are byte-identical by the determinism argument, so either winner
is correct.  A corrupt or truncated entry reads as a miss (and is
evicted) rather than an error: the cache is an optimisation, never a
source of truth.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Any

from repro.obs.metrics import counter_handle

_STORES = counter_handle("core.serve.cache.stores", help="cache entries written")
_EVICTIONS = counter_handle(
    "core.serve.cache.evictions", help="corrupt cache entries dropped on read"
)


class CachedResult:
    """One cache entry: the result record plus lazy artifact loaders."""

    def __init__(self, path: Path, record: dict[str, Any]):
        self._path = path
        self.record = record

    @property
    def digest(self) -> str:
        return self.record["digest"]

    def outputs(self) -> list[Any]:
        with (self._path / "outputs.pkl").open("rb") as fh:
            return pickle.load(fh)

    def metrics(self) -> dict[str, dict]:
        return json.loads((self._path / "metrics.json").read_text())

    def trace(self) -> dict[str, Any] | None:
        path = self._path / "trace.json"
        if not path.exists():
            return None
        return json.loads(path.read_text())


class ResultCache:
    """Directory-backed map from request cache key to completed result."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _entry_dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    def lookup(self, key: str) -> CachedResult | None:
        """The entry for *key*, or ``None`` (corrupt entries are evicted)."""
        path = self._entry_dir(key)
        if not path.is_dir():
            return None
        try:
            record = json.loads((path / "result.json").read_text())
            if record.get("key") != key or "digest" not in record:
                raise ValueError("entry does not match its key")
            if not (path / "outputs.pkl").exists():
                raise ValueError("entry is missing outputs")
            return CachedResult(path, record)
        except (OSError, ValueError, json.JSONDecodeError):
            shutil.rmtree(path, ignore_errors=True)
            _EVICTIONS.inc()
            return None

    def store(
        self,
        key: str,
        record: dict[str, Any],
        outputs: list[Any],
        metrics: dict[str, dict],
        trace: dict[str, Any] | None,
    ) -> CachedResult:
        """Persist one completed run under *key* (atomic rename)."""
        final = self._entry_dir(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        record = dict(record, key=key)
        tmp = Path(
            tempfile.mkdtemp(prefix=f".{key[:8]}-", dir=final.parent)
        )
        try:
            (tmp / "result.json").write_text(json.dumps(record, sort_keys=True, indent=1))
            with (tmp / "outputs.pkl").open("wb") as fh:
                pickle.dump(outputs, fh)
            (tmp / "metrics.json").write_text(json.dumps(metrics, sort_keys=True))
            if trace is not None:
                (tmp / "trace.json").write_text(json.dumps(trace))
            try:
                os.rename(tmp, final)
            except OSError:
                # Lost the race (or a previous entry exists): keep the
                # incumbent — determinism makes the copies identical.
                shutil.rmtree(tmp, ignore_errors=True)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        _STORES.inc()
        return CachedResult(final, record)

    def __len__(self) -> int:
        return sum(
            1
            for shard in self.root.iterdir()
            if shard.is_dir() and not shard.name.startswith(".")
            for entry in shard.iterdir()
            if entry.is_dir() and not entry.name.startswith(".")
        )
