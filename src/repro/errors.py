"""Exception hierarchy for the repro package.

All package-specific exceptions derive from :class:`ReproError` so callers
can catch everything this library raises with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CommError(ReproError):
    """Invalid use of the communication library (bad rank, tag, size...)."""


class DeadlockError(ReproError):
    """The SPMD program reached a state where no rank can make progress.

    Raised by the deterministic scheduler with a per-rank diagnostic of
    what each blocked rank was waiting for.
    """

    def __init__(self, message: str, waiting: dict[int, str] | None = None):
        super().__init__(message)
        #: map of rank -> human-readable description of its blocked wait
        self.waiting = dict(waiting or {})


class RankFailedError(ReproError):
    """A rank's body raised an exception; wraps the original failure."""

    def __init__(self, rank: int, original: BaseException):
        super().__init__(f"rank {rank} failed: {original!r}")
        self.rank = rank
        self.original = original


class InjectedFaultError(ReproError):
    """A fault deliberately injected by the verification layer fired.

    Raised inside a rank's body when a :class:`repro.runtime.scheduler.FaultPlan`
    crashes that rank; surfaces to the caller wrapped in
    :class:`RankFailedError` exactly like an organic rank failure, which is
    the property the fault-injection tests assert.
    """


class DistributionError(ReproError):
    """A data distribution is invalid or incompatible with an operation."""


class ArchetypeError(ReproError):
    """An archetype program violates the archetype's computational pattern."""
