"""The paper's "version 1" programs, in executable ``parfor``/``forall`` form.

Each function here transcribes one of the paper's initial
archetype-based algorithm versions — the programs of Figure 4 (mergesort
with CC++ ``parfor``), Figure 10 (two-dimensional FFT with HPF
``forall``), and Figure 13 (Poisson with ``forall`` and a reduction) —
into Python using :mod:`repro.core.parfor`.

These versions run in a single address space with N *logical* processes
(the parfor index), exactly as the paper describes debugging them.  The
test suite closes the semantics-preservation chain:

    sequential algorithm == version 1 (parfor) == version 2 (SPMD)

for each program, at every process count.
"""

from __future__ import annotations

import numpy as np

from repro.core.parfor import parfor
from repro.apps.fftlib import fft
from repro.apps.sorting.common import merge_sorted
from repro.util.partition import split_evenly
from repro.util.sampling import (
    pad_partition,
    partition_by_splitters,
    regular_sample,
    splitters_from_samples,
)


def mergesort_v1(data: np.ndarray, nprocs: int, oversample: int = 32) -> np.ndarray:
    """Figure 4: one-deep mergesort as parfor loops over N sections.

    Every parfor's iterations are independent (the archetype's pattern),
    so this program may execute its loops in any order — which it does.
    """
    sections = [np.array(s) for s in split_evenly(np.asarray(data), nprocs)]

    # --- solve phase ---
    def local_sort(i: int) -> np.ndarray:
        return np.sort(sections[i], kind="stable")

    sections = parfor(nprocs, local_sort)

    # --- merge phase ---
    def compute_local_splits(i: int) -> np.ndarray:
        return regular_sample(sections[i], oversample)

    local_splits = parfor(nprocs, compute_local_splits)
    global_splits = splitters_from_samples(
        np.concatenate([np.asarray(s) for s in local_splits]), nprocs
    )

    def local_repartition(i: int) -> list[np.ndarray]:
        return pad_partition(
            partition_by_splitters(sections[i], global_splits), nprocs, sections[i]
        )

    split_data = parfor(nprocs, local_repartition)

    def local_merge(i: int) -> np.ndarray:
        return merge_sorted([split_data[j][i] for j in range(nprocs)])

    merged = parfor(nprocs, local_merge)
    return np.concatenate(merged) if merged else np.asarray(data)


def fft2d_v1(data: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Figure 10: 2-D FFT as a row forall followed by a column forall.

    Each forall iteration transforms one independent row (column), per
    the paper's HPF ``INDEPENDENT`` annotation.
    """
    work = np.asarray(data, dtype=np.complex128).copy()
    n_rows, n_cols = work.shape

    rows = parfor(n_rows, lambda i: fft(work[i, :], inverse=inverse))
    for i, row in enumerate(rows):
        work[i, :] = row

    cols = parfor(n_cols, lambda j: fft(work[:, j], inverse=inverse))
    for j, col in enumerate(cols):
        work[:, j] = col
    return work


def poisson_v1(
    nx: int,
    ny: int,
    f=None,
    g=None,
    tolerance: float = 1e-4,
    max_iters: int = 10_000,
) -> tuple[np.ndarray, int]:
    """Figure 13: Jacobi iteration as a forall over interior points plus
    a max reduction driving the loop.

    The forall's snapshot semantics (all reads before any write) are
    exactly what makes the Jacobi update expressible without the
    explicit old/new copies of the sequential program.
    """
    if f is None:
        f = lambda i, j: np.zeros(np.broadcast(i, j).shape)  # noqa: E731
    if g is None:
        g = lambda i, j: np.where(  # noqa: E731
            np.broadcast_to(i, np.broadcast(i, j).shape) == 0, 1.0, 0.0
        )
    h2 = (1.0 / max(nx - 1, 1)) ** 2
    ii, jj = np.ix_(np.arange(nx), np.arange(ny))
    on_edge = (ii == 0) | (ii == nx - 1) | (jj == 0) | (jj == ny - 1)
    uk = np.where(on_edge, g(ii, jj), 0.0)
    fv = f(ii, jj)

    iterations = 0
    diffmax = tolerance + 1.0
    interior = [(i, j) for i in range(1, nx - 1) for j in range(1, ny - 1)]
    while diffmax > tolerance and iterations < max_iters:
        ukp = uk.copy()
        # forall over the interior: every right-hand side reads the uk
        # snapshot; assignment happens afterwards.
        from repro.core.parfor import forall

        forall(
            ukp,
            interior,
            lambda i, j, u: 0.25
            * (u[i - 1, j] + u[i + 1, j] + u[i, j - 1] + u[i, j + 1] - h2 * fv[i, j]),
            uk,
        )
        # reduction: diffmax = max |ukp - uk| (an associative reduce)
        diffmax = float(np.max(np.abs(ukp - uk)))
        uk = ukp
        iterations += 1
    return uk, iterations
