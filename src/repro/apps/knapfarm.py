"""Farmed branch and bound: a stream of knapsack instances through a
worker farm on the pipeline archetype.

This is the other parallelization axis for branch and bound: instead of
one search parallelized across ranks (:mod:`repro.core.branchbound`'s
manager/worker), a *stream* of independent instances is farmed out,
each solved by the archetype's sequential search on one farm worker.
The solver is reused verbatim — ``BranchAndBound._sequential`` only
needs the ``charge`` surface of a communicator, which
:class:`~repro.core.pipeline.StageContext` provides — so the same
search code runs under both archetypes.

Stages: a ``solve`` farm (readonly state: per-worker solver settings)
followed by a ``best`` accumulator that folds the minimum objective
over the stream (objective is the negated knapsack value, so the
minimum is the best solution seen).
"""

from __future__ import annotations

from repro.apps.knapsack import (
    KnapsackInstance,
    knapsack_problem,
    random_instance,
)
from repro.core.branchbound import BnBResult, BranchAndBound
from repro.core.pipeline import (
    FarmStage,
    PipelineArchetype,
    Stage,
    StageContext,
    StateAccess,
)
from repro.runtime.spmd import RunResult


def random_instances(
    count: int, nitems: int = 12, seed: int = 0
) -> list[KnapsackInstance]:
    """A reproducible stream of independent knapsack instances."""
    return [random_instance(nitems, seed=seed + i) for i in range(count)]


def _solve(ctx: StageContext, inst: KnapsackInstance, state) -> BnBResult:
    solver = BranchAndBound(knapsack_problem(inst, **(state or {})))
    return solver._sequential(ctx)


def _best(ctx: StageContext, res: BnBResult, state: float) -> tuple[BnBResult, float]:
    return res, (res.value if res.value < state else state)


def knapsack_farm(
    workers: int = 4,
    window: int = 2,
    ordered: bool = True,
    bound_flops: float | None = None,
) -> PipelineArchetype:
    """A ``workers``-wide solve farm plus the best-objective accumulator.

    ``run(pipeline.nprocs, instances)``; the collector's list holds one
    :class:`~repro.core.branchbound.BnBResult` per instance (stream
    order when ``ordered``), and ``best_value`` extracts the best
    knapsack value over the whole stream.
    """
    settings = {} if bound_flops is None else {"bound_flops": bound_flops}
    return PipelineArchetype(
        [
            FarmStage(
                "solve",
                _solve,
                workers=workers,
                init_state=lambda w: settings,
            ),
            Stage(
                "best",
                _best,
                state_access=StateAccess.ACCUMULATOR,
                init_state=lambda w: float("inf"),
                combine=min,
            ),
        ],
        window=window,
        ordered=ordered,
    )


def best_value(pipeline: PipelineArchetype, result: RunResult) -> float:
    """The best knapsack value found across the stream (un-negated)."""
    return -pipeline.accumulated_state(result, "best")
