"""Closest pair of points in the plane (paper §2.5).

The paper names "the problem of finding the two nearest neighbors in a
set of points in a plane" as amenable to one-deep solutions.  The
one-deep structure here:

- **split** (nontrivial): x-splitters are chosen from a sample and points
  are redistributed into vertical strips, one per rank;
- **solve**: each rank runs the classical sequential divide-and-conquer
  closest-pair algorithm on its strip;
- **merge**: cross-strip pairs can only occur within ``delta`` (the
  global minimum of the strip solutions) of a strip boundary, so each
  rank ships its boundary bands to the neighbouring strips, checks the
  cross pairs, and a final reduction produces the global answer on every
  rank.

The merge dataflow is neighbour point-to-point rather than all-to-all,
so this application subclasses :class:`~repro.core.archetype.Archetype`
directly — archetypes permit application code to reference the containing
parallel structure (paper §5, "Program skeletons").
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.archetype import Archetype
from repro.comm.communicator import Comm
from repro.comm.reductions import MIN
from repro.apps.sorting.common import sort_cost
from repro.util.partition import split_evenly
from repro.util.sampling import splitters_from_samples

_OVERSAMPLE = 32


def _pair_key(p: np.ndarray, q: np.ndarray) -> tuple[float, tuple, tuple]:
    d = float(np.hypot(p[0] - q[0], p[1] - q[1]))
    a, b = sorted([tuple(p.tolist()), tuple(q.tolist())])
    return (d, a, b)


def brute_force_pair(points: np.ndarray) -> tuple[float, tuple, tuple]:
    """O(n^2) reference; returns (distance, point_a, point_b)."""
    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    n = pts.shape[0]
    if n < 2:
        return (math.inf, (), ())
    best = (math.inf, (), ())
    for i in range(n - 1):
        d = np.hypot(pts[i + 1 :, 0] - pts[i, 0], pts[i + 1 :, 1] - pts[i, 1])
        j = int(np.argmin(d))
        if d[j] < best[0]:
            best = _pair_key(pts[i], pts[i + 1 + j])
    return best


def closest_pair(points: np.ndarray) -> tuple[float, tuple, tuple]:
    """Classical O(n log n) divide-and-conquer closest pair.

    Returns ``(distance, point_a, point_b)`` with the points ordered
    lexicographically (deterministic tie-breaking); ``(inf, (), ())``
    for fewer than two points.
    """
    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    if pts.shape[0] < 2:
        return (math.inf, (), ())
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    px = pts[order]
    py = px[np.argsort(px[:, 1], kind="stable")]
    return _closest_rec(px, py)


def _closest_rec(px: np.ndarray, py: np.ndarray) -> tuple[float, tuple, tuple]:
    n = px.shape[0]
    if n <= 16:
        return brute_force_pair(px)
    mid = n // 2
    midx = px[mid, 0]
    left_mask = np.zeros(py.shape[0], dtype=bool)
    # Split py by membership of the left half of px (by index identity via
    # lexicographic position: points with x < midx go left; ties split by
    # position, resolved with a stable count).
    in_left = py[:, 0] < midx
    # Handle duplicated x == midx columns: count how many belong left.
    n_strict = int(np.sum(px[:mid, 0] < midx))
    need_ties = mid - n_strict
    tie_idx = np.where(py[:, 0] == midx)[0]
    left_mask[:] = in_left
    left_mask[tie_idx[:need_ties]] = True
    dl = _closest_rec(px[:mid], py[left_mask])
    dr = _closest_rec(px[mid:], py[~left_mask])
    best = min(dl, dr)
    delta = best[0]
    strip = py[np.abs(py[:, 0] - midx) < delta]
    m = strip.shape[0]
    for i in range(m):
        for j in range(i + 1, min(i + 8, m)):
            if strip[j, 1] - strip[i, 1] >= delta:
                break
            cand = _pair_key(strip[i], strip[j])
            if cand < best:
                best = cand
                delta = best[0]
    return best


def closest_pair_cost(n: int) -> float:
    """Analytic work of the sequential algorithm."""
    return sort_cost(n) + (10.0 * n * max(1.0, math.log2(max(n, 2))))


class OneDeepClosestPair(Archetype):
    """One-deep closest pair: strip split, local solve, boundary-band merge."""

    name = "one-deep-closest-pair"

    def __init__(self, oversample: int = _OVERSAMPLE):
        self.oversample = oversample

    def prepare(self, nprocs: int, points: np.ndarray) -> tuple[tuple, dict]:
        pts = np.asarray(points, dtype=float).reshape(-1, 2)
        return (split_evenly(pts, nprocs),), {}

    def body(self, comm: Comm, sections: list[np.ndarray]) -> tuple[float, tuple, tuple]:
        local = np.asarray(sections[comm.rank]).reshape(-1, 2)

        # --- split phase: x-splitters from samples, strip redistribution ---
        splitters = np.empty(0)
        if comm.size > 1:
            s = self.oversample
            idx = (np.arange(s, dtype=np.int64) * local.shape[0]) // max(s, 1)
            sample = local[idx % max(local.shape[0], 1), 0] if local.size else local[:0, 0]
            samples = comm.allgather(sample)
            splitters = splitters_from_samples(
                np.concatenate([np.asarray(x) for x in samples]), comm.size
            )
            comm.charge(sort_cost(s * comm.size), label="split:params")
            strip_of = np.searchsorted(splitters, local[:, 0], side="right")
            comm.charge(4.0 * local.shape[0], label="split:partition")
            pieces = [local[strip_of == j] for j in range(comm.size)]
            received = comm.alltoall(pieces)
            local = (
                np.vstack([p for p in received if p.size])
                if any(p.size for p in received)
                else local[:0]
            )

        # --- solve phase: sequential closest pair per strip ---
        comm.charge(closest_pair_cost(local.shape[0]), label="solve")
        best = closest_pair(local)

        # --- merge phase: cross-strip candidates near strip boundaries ---
        # A cross-strip pair lies within delta of every boundary it spans,
        # so checking, at each boundary b, all points (from *any* strip)
        # with |x - s_b| < delta finds every cross pair — including pairs
        # spanning strips narrower than delta.  Rank b owns boundary s_b.
        # An infinite delta (every strip has < 2 points) makes every point
        # a boundary candidate; there are then at most 2P points total, so
        # the full exchange below stays cheap.
        delta = comm.allreduce(best[0], MIN)
        if comm.size > 1:
            parcels: list[np.ndarray] = []
            for b in range(comm.size):
                if b < splitters.size:
                    near = local[np.abs(local[:, 0] - splitters[b]) < delta]
                else:
                    near = local[:0]
                parcels.append(near)
            received = comm.alltoall(parcels)
            band = np.vstack([np.asarray(p).reshape(-1, 2) for p in received])
            if band.shape[0] >= 2:
                comm.charge(closest_pair_cost(band.shape[0]), label="merge:band")
                cand = closest_pair(band)
                if cand < best:
                    best = cand
        # Global minimum (postcondition: every rank has the answer).
        return comm.allreduce(best, MIN)


def one_deep_closest_pair(oversample: int = _OVERSAMPLE) -> OneDeepClosestPair:
    """Factory mirroring the other applications' interfaces."""
    return OneDeepClosestPair(oversample=oversample)
