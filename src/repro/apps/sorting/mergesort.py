"""Mergesort three ways: sequential, traditional parallel, one-deep.

This is the paper's §2.4 development in full:

- :func:`sequential_mergesort` — the starting sequential algorithm
  (bottom-up with vectorised merges) and its analytic cost, used as the
  speedup baseline exactly as the paper compares "to sequential
  mergesort";
- :func:`traditional_mergesort` — the Figure 1 parallelisation: data
  starts on one rank, recursive halving over the rank tree;
- :func:`one_deep_mergesort` — the archetype version of Figures 4/5:
  degenerate split (the initial distribution), local sort, splitter-based
  merge with all-to-all redistribution.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.onedeep import OneDeepDC, PhaseSpec, SplitterStrategy
from repro.core.traditional import TraditionalDC
from repro.apps.sorting.common import (
    MERGE_FLOPS_PER_KEY,
    merge_cost,
    merge_sorted,
    merge_two_sorted,
    sort_cost,
)
from repro.machines.model import MachineModel
from repro.util.sampling import (
    pad_partition,
    partition_by_splitters,
    regular_sample,
    splitters_from_samples,
)

#: local samples per rank used to compute merge splitters
OVERSAMPLE = 32


def sequential_mergesort(data: np.ndarray) -> np.ndarray:
    """Bottom-up mergesort (stable): doubling runs of vectorised merges."""
    arr = np.asarray(data).copy()
    n = arr.size
    run = 1
    while run < n:
        for lo in range(0, n, 2 * run):
            mid = min(lo + run, n)
            hi = min(lo + 2 * run, n)
            if mid < hi:
                arr[lo:hi] = merge_two_sorted(arr[lo:mid], arr[mid:hi])
        run *= 2
    return arr


def sequential_sort_time(n: int, machine: MachineModel) -> float:
    """Virtual time of the sequential mergesort baseline on *machine*."""
    return machine.compute_time(sort_cost(n), working_set_bytes=8.0 * n)


def _merge_phase(oversample: int = OVERSAMPLE) -> PhaseSpec:
    """The one-deep merge phase of paper §2.4.2 (steps 1-4)."""
    return PhaseSpec(
        sample=lambda local: regular_sample(local, oversample),
        params=lambda samples, n: splitters_from_samples(
            np.concatenate([np.asarray(s) for s in samples]), n
        ),
        partition=lambda splitters, local, n: pad_partition(
            partition_by_splitters(local, splitters), n, local
        ),
        combine=merge_sorted,
        sample_cost=lambda local: float(oversample),
        params_cost=lambda samples: sort_cost(sum(np.asarray(s).size for s in samples)),
        partition_cost=lambda local: MERGE_FLOPS_PER_KEY * np.asarray(local).size,
        combine_cost=lambda combined: merge_cost(np.asarray(combined).size, ways=8),
    )


def one_deep_mergesort(
    strategy: SplitterStrategy | str = SplitterStrategy.REPLICATED,
    oversample: int = OVERSAMPLE,
) -> OneDeepDC:
    """The one-deep mergesort archetype instance.

    Degenerate split (the initial block distribution *is* the split);
    local solve sorts each section; the merge phase computes splitters
    from regular samples, repartitions, redistributes all-to-all, and
    k-way merges locally.  After ``run(P, data)``, rank ``i``'s return
    value holds the keys between splitters ``i-1`` and ``i`` — the sorted
    array is the concatenation of the per-rank values.
    """
    return OneDeepDC(
        solve=lambda local: np.sort(local, kind="stable"),
        solve_cost=lambda local: sort_cost(np.asarray(local).size),
        merge=_merge_phase(oversample),
        strategy=strategy,
    )


def traditional_mergesort() -> TraditionalDC:
    """The Figure 1 baseline: recursive halving from a single rank.

    The whole input starts on rank 0; each tree level splits in half and
    ships one half; leaves sort locally; merges combine pairwise on the
    way up.  The final sorted array is rank 0's return value.
    """
    return TraditionalDC(
        divide=lambda d: (d[: d.size // 2], d[d.size // 2 :]),
        leaf_solve=lambda d: np.sort(d, kind="stable"),
        merge2=merge_two_sorted,
        # The top-level divide touches every key (the paper's first
        # inefficiency); charge a per-key inspection cost.
        divide_cost=lambda d: 2.0 * np.asarray(d).size,
        leaf_cost=lambda d: sort_cost(np.asarray(d).size),
        merge_cost=lambda merged: merge_cost(np.asarray(merged).size),
    )


def expected_onedeep_messages(nprocs: int) -> int:
    """Message count of one one-deep mergesort run (analysis helper):
    the allgather ring plus the pairwise all-to-all."""
    if nprocs <= 1:
        return 0
    return nprocs * (nprocs - 1) * 2


def expected_tree_depth(nprocs: int) -> int:
    """Depth of the traditional algorithm's process tree."""
    return max(1, math.ceil(math.log2(max(nprocs, 1)))) if nprocs > 1 else 0
