"""Sorting applications of the one-deep divide-and-conquer archetype.

The paper's running example (§2.4): mergesort with a degenerate split and
a splitter-based merge, plus the baseline traditional parallel mergesort
of Figure 1, plus one-deep quicksort (§2.5.2) whose split is nontrivial
and whose merge is degenerate (concatenation) — also known as sample sort.
"""

from repro.apps.sorting.common import (
    SORT_FLOPS_PER_KEY,
    merge_cost,
    merge_sorted,
    merge_two_sorted,
    sort_cost,
)
from repro.apps.sorting.mergesort import (
    one_deep_mergesort,
    sequential_mergesort,
    sequential_sort_time,
    traditional_mergesort,
)
from repro.apps.sorting.quicksort import one_deep_quicksort, sequential_quicksort

__all__ = [
    "SORT_FLOPS_PER_KEY",
    "sort_cost",
    "merge_cost",
    "merge_two_sorted",
    "merge_sorted",
    "sequential_mergesort",
    "sequential_sort_time",
    "one_deep_mergesort",
    "traditional_mergesort",
    "sequential_quicksort",
    "one_deep_quicksort",
]
