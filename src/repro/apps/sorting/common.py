"""Shared sorting machinery: vectorised merges and the analytic cost model.

The cost model charges comparison-sort work as
``SORT_FLOPS_PER_KEY * n * log2(n)`` operations and merge work as
``MERGE_FLOPS_PER_KEY`` per key moved — the quantities the machine model
converts to virtual seconds.  The constants approximate the per-key
instruction counts of tuned C mergesort on the era's processors; only
their *ratio* to the communication parameters affects speedup shapes.
"""

from __future__ import annotations

import math

import numpy as np

#: operations charged per key per comparison level of a sort
SORT_FLOPS_PER_KEY = 4.0
#: operations charged per key moved during a merge
MERGE_FLOPS_PER_KEY = 6.0


def sort_cost(n: int) -> float:
    """Analytic work (flops) to comparison-sort *n* keys."""
    return 0.0 if n <= 1 else SORT_FLOPS_PER_KEY * n * math.log2(n)


def merge_cost(n: int, ways: int = 2) -> float:
    """Analytic work to *ways*-way merge *n* total keys."""
    if n <= 0 or ways <= 1:
        return 0.0
    return MERGE_FLOPS_PER_KEY * n * math.log2(ways)


def merge_two_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Stable O(n) merge of two sorted arrays (vectorised).

    Positions each input run in the output with one ``searchsorted`` per
    side: ``a[i]`` lands at ``i`` plus the number of strictly smaller
    ``b`` keys; ``b[j]`` at ``j`` plus the number of ``a`` keys <= it —
    the asymmetry (left/right) keeps equal keys stable (``a`` first).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size == 0:
        return b.copy()
    if b.size == 0:
        return a.copy()
    out = np.empty(a.size + b.size, dtype=np.result_type(a, b))
    idx_a = np.arange(a.size) + np.searchsorted(b, a, side="left")
    idx_b = np.arange(b.size) + np.searchsorted(a, b, side="right")
    out[idx_a] = a
    out[idx_b] = b
    return out


def merge_sorted(arrays: list[np.ndarray]) -> np.ndarray:
    """Stable k-way merge by balanced pairwise two-way merges.

    ``ceil(log2 k)`` passes over the data, each pass a vectorised two-way
    merge — the same O(n log k) work the analytic :func:`merge_cost`
    charges.
    """
    runs = [np.asarray(a) for a in arrays if np.asarray(a).size > 0]
    if not runs:
        base = arrays[0] if arrays else np.empty(0)
        return np.asarray(base).copy()
    while len(runs) > 1:
        merged = [
            merge_two_sorted(runs[i], runs[i + 1]) if i + 1 < len(runs) else runs[i]
            for i in range(0, len(runs), 2)
        ]
        runs = merged
    return runs[0]
