"""One-deep quicksort (paper §2.5.2) — a.k.a. parallel sample sort.

Unlike one-deep mergesort, the *split* phase is nontrivial: N-1 pivots
are chosen from a sample of the (unsorted) input and the data is
partitioned so segment ``P_i`` holds keys between pivots ``p_i`` and
``p_{i+1}``; after the independent local sorts the merge is degenerate —
the answer is simply the concatenation of the local results.
"""

from __future__ import annotations

import numpy as np

from repro.core.onedeep import OneDeepDC, PhaseSpec, SplitterStrategy
from repro.apps.sorting.common import MERGE_FLOPS_PER_KEY, sort_cost
from repro.util.sampling import splitters_from_samples

#: local samples per rank used to choose pivots
OVERSAMPLE = 32


def sequential_quicksort(data: np.ndarray) -> np.ndarray:
    """In-place-style sequential quicksort (introspective variant)."""
    return np.sort(np.asarray(data), kind="quicksort")


def _sample_unsorted(local: np.ndarray, s: int) -> np.ndarray:
    """Evenly strided sample of an *unsorted* local block."""
    arr = np.asarray(local)
    if arr.size == 0 or s <= 0:
        return arr[:0]
    idx = (np.arange(s, dtype=np.int64) * arr.size) // s
    return arr[idx]


def _partition_unsorted(pivots: np.ndarray, local: np.ndarray, n: int) -> list[np.ndarray]:
    """Cut unsorted keys into ``n`` segments by pivot values.

    Key ``x`` goes to the segment ``i`` with ``pivots[i-1] <= x <
    pivots[i]``; within a segment input order is preserved (stability).
    """
    arr = np.asarray(local)
    seg = np.searchsorted(np.asarray(pivots), arr, side="right")
    order = np.argsort(seg, kind="stable")
    arr_sorted_by_seg = arr[order]
    boundaries = np.searchsorted(seg[order], np.arange(1, n))
    return np.split(arr_sorted_by_seg, boundaries)


def one_deep_quicksort(
    strategy: SplitterStrategy | str = SplitterStrategy.REPLICATED,
    oversample: int = OVERSAMPLE,
) -> OneDeepDC:
    """The one-deep quicksort archetype instance.

    Nontrivial split (pivot selection + all-to-all repartition), local
    sort solve, degenerate merge.  After ``run(P, data)``, rank ``i``'s
    return value holds the sorted keys of segment ``i``; concatenating the
    per-rank values yields the sorted array.
    """
    split = PhaseSpec(
        sample=lambda local: _sample_unsorted(local, oversample),
        params=lambda samples, n: splitters_from_samples(
            np.concatenate([np.asarray(s) for s in samples]), n
        ),
        partition=_partition_unsorted,
        combine=lambda pieces: np.concatenate(
            [np.asarray(p) for p in pieces]
        )
        if pieces
        else np.empty(0),
        sample_cost=lambda local: float(oversample),
        params_cost=lambda samples: sort_cost(
            sum(np.asarray(s).size for s in samples)
        ),
        partition_cost=lambda local: MERGE_FLOPS_PER_KEY * np.asarray(local).size,
        combine_cost=lambda combined: 2.0 * np.asarray(combined).size,
    )
    return OneDeepDC(
        solve=lambda local: np.sort(local, kind="stable"),
        solve_cost=lambda local: sort_cost(np.asarray(local).size),
        split=split,
        merge=None,
        strategy=strategy,
    )
