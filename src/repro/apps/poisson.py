"""Jacobi Poisson solver (paper §4.4.3) on the mesh-spectral archetype.

Solves the Poisson problem  ∇²u = f  on the unit square with Dirichlet
boundary condition u = g on the domain edge, by discretising on an
NX x NY grid and applying Jacobi iteration

    u'[i,j] = ( u[i-1,j] + u[i+1,j] + u[i,j-1] + u[i,j+1] - h² f[i,j] ) / 4

to all interior points until the global maximum change falls below a
tolerance.  The program uses every mesh-spectral ingredient the paper
lists: a 5-point stencil grid operation preceded by a boundary exchange,
a max-reduction, and a copy-consistent global variable (``diffmax``)
driving the control flow — the structure of the paper's Figures 13/14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.meshspectral import MeshContext, MeshProgram
from repro.comm.reductions import MAX
from repro.kernels import READ, WRITE, Arg, ExprKernel, Ref
from repro.machines.model import MachineModel

#: flops charged per interior point per Jacobi sweep (update + residual)
FLOPS_PER_POINT = 8.0


@dataclass
class PoissonResult:
    """Converged solution state returned by every rank."""

    iterations: int
    diffmax: float
    #: the full solution grid (on rank 0 only; ``None`` elsewhere)
    solution: np.ndarray | None


def poisson_program(
    mesh: MeshContext,
    nx: int,
    ny: int,
    f: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    g: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    tolerance: float = 1e-4,
    max_iters: int = 10_000,
    gather_solution: bool = True,
    overlap: bool = True,
) -> PoissonResult:
    """The per-process Poisson body (the paper's Figure 14, in archetype form).

    ``f`` and ``g`` map *global grid indices* (broadcastable integer
    arrays) to source and boundary values; defaults are f = 0 and a hot
    top edge.  ``h = 1/(nx-1)`` scales the source term.

    *overlap* selects the nonblocking ghost exchange (interior Jacobi
    points update while boundary slabs travel); results are bitwise
    identical either way — the 5-point star never reads corner ghosts.
    """
    mesh.overlap = overlap
    if f is None:
        f = lambda i, j: np.zeros(np.broadcast(i, j).shape)  # noqa: E731
    if g is None:
        g = lambda i, j: np.where(np.broadcast_to(i, np.broadcast(i, j).shape) == 0, 1.0, 0.0)  # noqa: E731

    h2 = (1.0 / max(nx - 1, 1)) ** 2

    uk = mesh.grid((nx, ny), ghost=1)
    ukp = mesh.grid((nx, ny), ghost=1)
    fgrid = mesh.grid((nx, ny), ghost=1)

    # Initialise: boundary of u to g, interior to an initial guess of 0;
    # f everywhere.  Global indices keep the initialisation identical for
    # any process count.
    ii, jj = uk.coord_arrays()
    on_edge = (ii == 0) | (ii == nx - 1) | (jj == 0) | (jj == ny - 1)
    uk.interior[...] = np.where(on_edge, g(ii, jj), 0.0)
    ukp.interior[...] = uk.interior
    fgrid.interior[...] = f(ii, jj)

    # diffmax is a global variable: its copies may only change through the
    # reduction below, which establishes the same value on every rank.
    diffmax = mesh.global_var(tolerance + 1.0)
    iterations = 0

    # The Jacobi sweep as a declared expression kernel: u is read at the
    # four axis neighbours (halo 1), f only at the centre (halo 0) — so
    # the kernel layer exchanges u's ghosts each iteration but knows f
    # needs no refresh at all, unlike the historical per-op path which
    # re-exchanged the never-written source term every sweep.
    jacobi = ExprKernel(
        "0.25 * (un + us + uw + ue - h2 * f)",
        {
            "un": Ref(1, (-1, 0)),
            "us": Ref(1, (1, 0)),
            "uw": Ref(1, (0, -1)),
            "ue": Ref(1, (0, 1)),
            "f": Ref(2),
            "h2": h2,
        },
        name="jacobi",
    )

    def copy_new_to_old(old: np.ndarray, new: np.ndarray) -> None:
        old[...] = new

    region = uk.interior_intersection(1)
    while diffmax.value > tolerance and iterations < max_iters:
        # Grid operation with declared neighbour reads: the kernel layer
        # inserts the boundary exchange and updates only global-interior
        # points.
        mesh.parloop(
            jacobi,
            Arg(ukp, WRITE),
            Arg(uk, READ, halo=1),
            Arg(fgrid, READ),
            margin=1,
            flops_per_point=FLOPS_PER_POINT,
            label="jacobi",
        )
        # Convergence check: a max-reduction whose result every rank holds.
        mesh.charge(2.0 * ukp.interior[region].size, label="diffmax")
        diffmax.set_from_reduction(
            _local_interior_diff(ukp, uk), MAX
        )
        mesh.parloop(
            copy_new_to_old,
            Arg(uk, WRITE),
            Arg(ukp, READ),
            margin=1,
            flops_per_point=2.0,
            label="copy-new-to-old",
        )
        iterations += 1

    solution = uk.gather(root=0) if gather_solution else None
    return PoissonResult(
        iterations=iterations,
        diffmax=float(diffmax.value),
        solution=solution if mesh.comm.rank == 0 else None,
    )


def _local_interior_diff(ukp, uk) -> float:
    """Local max |u' - u| over the global-interior part of the section."""
    region = uk.interior_intersection(1)
    a = ukp.interior[region]
    b = uk.interior[region]
    return float(np.max(np.abs(a - b))) if a.size else float("-inf")


def poisson_archetype() -> MeshProgram:
    """Archetype driver for the Jacobi Poisson solver."""
    return MeshProgram(poisson_program, app_name="poisson")


def sequential_poisson_time(
    nx: int, ny: int, iterations: int, machine: MachineModel
) -> float:
    """Virtual time of the sequential solver for a known iteration count."""
    interior = max(nx - 2, 0) * max(ny - 2, 0)
    work = (FLOPS_PER_POINT + 2.0 + 2.0) * interior * iterations
    return machine.compute_time(work, working_set_bytes=24.0 * nx * ny)


def reference_poisson(
    nx: int,
    ny: int,
    f: Callable | None = None,
    g: Callable | None = None,
    tolerance: float = 1e-4,
    max_iters: int = 10_000,
) -> tuple[np.ndarray, int]:
    """Plain-NumPy sequential Jacobi, used to validate the archetype runs."""
    if f is None:
        f = lambda i, j: np.zeros(np.broadcast(i, j).shape)  # noqa: E731
    if g is None:
        g = lambda i, j: np.where(np.broadcast_to(i, np.broadcast(i, j).shape) == 0, 1.0, 0.0)  # noqa: E731
    h2 = (1.0 / max(nx - 1, 1)) ** 2
    ii, jj = np.ix_(np.arange(nx), np.arange(ny))
    on_edge = (ii == 0) | (ii == nx - 1) | (jj == 0) | (jj == ny - 1)
    u = np.where(on_edge, g(ii, jj), 0.0)
    fv = f(ii, jj)
    it = 0
    diff = tolerance + 1.0
    while diff > tolerance and it < max_iters:
        unew = u.copy()
        unew[1:-1, 1:-1] = 0.25 * (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:] - h2 * fv[1:-1, 1:-1]
        )
        diff = float(np.max(np.abs(unew - u)))
        u = unew
        it += 1
    return u, it
