"""From-scratch one-dimensional FFT.

The mesh-spectral FFT application (paper §4.4) needs a sequential 1-D
transform for its row/column operations; we build it rather than calling
a library: an iterative radix-2 Cooley–Tukey for power-of-two lengths,
vectorised over leading axes so a whole local block of rows transforms at
once, plus Bluestein's chirp-z algorithm for arbitrary lengths.

Cost model: the conventional ``5 n log2 n`` real operations per length-n
complex transform.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ReproError


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def bit_reverse_indices(n: int) -> np.ndarray:
    """Bit-reversal permutation of ``range(n)`` (n a power of two)."""
    if not is_power_of_two(n):
        raise ReproError(f"bit reversal needs a power-of-two length, got {n}")
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros_like(idx)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


def fft_cost(n: int, count: int = 1) -> float:
    """Analytic work of *count* length-*n* complex transforms."""
    if n <= 1:
        return 0.0
    return 5.0 * n * math.log2(n) * count


def _fft_pow2(x: np.ndarray, inverse: bool) -> np.ndarray:
    """Iterative radix-2 Cooley–Tukey along the last axis (n = 2^k)."""
    n = x.shape[-1]
    y = np.ascontiguousarray(x, dtype=np.complex128)[..., bit_reverse_indices(n)]
    sign = 2j * math.pi if inverse else -2j * math.pi
    length = 2
    while length <= n:
        half = length // 2
        twiddle = np.exp(sign * np.arange(half) / length)
        y = y.reshape(*y.shape[:-1], n // length, length)
        even = y[..., :half]
        odd = y[..., half:] * twiddle
        upper = even + odd
        lower = even - odd
        y = np.concatenate([upper, lower], axis=-1)
        y = y.reshape(*y.shape[:-2], n)
        length *= 2
    return y


def _fft_bluestein(x: np.ndarray, inverse: bool) -> np.ndarray:
    """Bluestein chirp-z transform for arbitrary n, via a 2^k convolution."""
    n = x.shape[-1]
    sign = 1.0 if inverse else -1.0
    k = np.arange(n)
    chirp = np.exp(sign * 1j * math.pi * (k * k % (2 * n)) / n)
    m = 1
    while m < 2 * n - 1:
        m *= 2
    a = np.zeros((*x.shape[:-1], m), dtype=np.complex128)
    a[..., :n] = np.asarray(x, dtype=np.complex128) * chirp
    b = np.zeros(m, dtype=np.complex128)
    b[:n] = np.conj(chirp)
    b[m - n + 1 :] = np.conj(chirp[1:][::-1])
    fa = _fft_pow2(a, inverse=False)
    fb = _fft_pow2(b, inverse=False)
    conv = _fft_pow2(fa * fb, inverse=True) / m
    return conv[..., :n] * chirp


def fft(x: np.ndarray, inverse: bool = False, axis: int = -1) -> np.ndarray:
    """Complex DFT along *axis* (no normalisation on the forward pass;
    the inverse divides by n, so ``fft(fft(x), inverse=True) == x``).

    Power-of-two lengths use radix-2 Cooley–Tukey; other lengths use
    Bluestein.  Vectorised over all other axes.
    """
    x = np.asarray(x)
    if x.ndim == 0:
        raise ReproError("fft needs at least one dimension")
    moved = np.moveaxis(x, axis, -1)
    n = moved.shape[-1]
    if n == 0:
        raise ReproError("fft of an empty axis")
    if n == 1:
        out = moved.astype(np.complex128)
    elif is_power_of_two(n):
        out = _fft_pow2(moved, inverse)
    else:
        out = _fft_bluestein(moved, inverse)
    if inverse:
        out = out / n
    return np.moveaxis(out, -1, axis)


def ifft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse DFT (normalised by 1/n)."""
    return fft(x, inverse=True, axis=axis)


def fft2(x: np.ndarray) -> np.ndarray:
    """Sequential 2-D DFT (rows then columns) — the paper's sequential
    algorithm and the reference for the distributed version."""
    return fft(fft(x, axis=1), axis=0)


def ifft2(x: np.ndarray) -> np.ndarray:
    """Sequential inverse 2-D DFT."""
    return ifft(ifft(x, axis=0), axis=1)


def fft_frequencies(n: int, d: float = 1.0) -> np.ndarray:
    """Sample frequencies matching :func:`fft` output ordering."""
    k = np.arange(n)
    k[k >= (n + 1) // 2] -= n
    return k / (n * d)
