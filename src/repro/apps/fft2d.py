"""Distributed two-dimensional FFT (paper §4.4) on the mesh-spectral archetype.

The sequential algorithm — a 1-D FFT over each row followed by a 1-D FFT
over each column — maps to the archetype as a row operation, a rows->cols
redistribution (Figure 7), a column operation, and a redistribution back
to the initial layout (the paper adds this last step "for the sake of
tidiness").  All interprocess communication happens inside the
redistribution.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.meshspectral import MeshContext, MeshProgram
from repro.core.grid import DistGrid
from repro.apps.fftlib import fft, fft_cost
from repro.machines.model import MachineModel


def fft2d_program(
    mesh: MeshContext,
    full: np.ndarray | None,
    repeats: int = 1,
    inverse: bool = False,
) -> np.ndarray | None:
    """The paper's Figure 11 program: per-process body of the 2-D FFT.

    ``full`` is the input array on rank 0 (``None`` elsewhere); returns
    the transformed array on rank 0.  ``repeats`` re-applies the
    transform to lengthen the computation, matching the paper's Figure 12
    workload ("FFT repeated N times").
    """
    if full is not None:
        full = np.asarray(full, dtype=np.complex128)
    grid = DistGrid.from_global(mesh.comm, full, dist="rows")
    n_cols = grid.global_shape[1]
    n_rows = grid.global_shape[0]
    for _ in range(repeats):
        # Row FFTs: data distributed by rows (precondition of the row op).
        mesh.row_op(
            lambda block: fft(block, inverse=inverse, axis=1),
            grid,
            flops_per_row=fft_cost(n_cols),
            label="row-fft",
        )
        # Redistribute rows -> columns (Figure 7).
        grid = mesh.redistribute(grid, "cols")
        # Column FFTs: data distributed by columns.
        mesh.col_op(
            lambda cols: fft(cols, inverse=inverse, axis=1),
            grid,
            flops_per_col=fft_cost(n_rows),
            label="col-fft",
        )
        # Restore the original distribution for the next repeat / output.
        grid = mesh.redistribute(grid, "rows")
    return grid.gather(root=0)


def fft2d_archetype() -> MeshProgram:
    """Archetype driver for the distributed 2-D FFT."""
    return MeshProgram(fft2d_program, app_name="fft2d")


def run_fft2d(
    nprocs: int,
    array: np.ndarray,
    repeats: int = 1,
    machine: MachineModel | None = None,
    mode: str = "sequential",
) -> Any:
    """Convenience wrapper: transform *array* on *nprocs* ranks.

    Returns the :class:`~repro.runtime.spmd.RunResult`; the transformed
    array is ``result.values[0]``.
    """
    kwargs: dict[str, Any] = {"mode": mode}
    if machine is not None:
        kwargs["machine"] = machine
    return fft2d_archetype().run(nprocs, np.asarray(array), repeats, **kwargs)


def sequential_fft2d_time(shape: tuple[int, int], repeats: int, machine: MachineModel) -> float:
    """Virtual time of the sequential 2-D FFT baseline."""
    rows, cols = shape
    work = (fft_cost(cols) * rows + fft_cost(rows) * cols) * repeats
    return machine.compute_time(work, working_set_bytes=16.0 * rows * cols)
