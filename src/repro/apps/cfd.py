"""Two-dimensional compressible-flow code (paper §4.5.1).

The paper's CFD applications simulate high-Mach-number compressible flow
on the two-dimensional mesh archetype.  This module implements a 2-D
compressible Euler solver with the Lax–Friedrichs scheme — first-order
and diffusive but robust through strong shocks, and exactly the
archetype's shape: per step, a ghost-boundary exchange on each state
grid, a pointwise flux evaluation, a stencil update, and a global
reduction for the CFL time step (a copy-consistent global variable).

The demo initial condition reproduces the physics of the paper's
Figure 19: a Mach shock propagating into gas with a sinusoidal density
interface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.meshspectral import MeshContext, MeshProgram
from repro.comm.reductions import MAX
from repro.machines.model import MachineModel

#: ratio of specific heats (diatomic gas)
GAMMA = 1.4
#: flops charged per cell per time step (flux eval + LF update, 4 components)
FLOPS_PER_CELL = 90.0

# Ideal-dissociating-gas (IDG) style chemistry for the reactive variant
# (the paper's second CFD code, Figure 20): a progress variable lambda
# relaxes toward dissociation behind hot shocked gas, absorbing energy.
#: Arrhenius pre-exponential factor (1/time)
IDG_RATE = 4000.0
#: activation temperature (normalised, T = p / rho); high enough that the
#: cold pre-shock gas is chemically frozen while shocked gas dissociates
IDG_T_ACT = 6.0
#: dissociation energy per unit mass at lambda = 1
IDG_HEAT = 0.3
#: extra flops per cell per step for the chemistry update
CHEM_FLOPS_PER_CELL = 25.0


@dataclass
class CFDResult:
    """Final flow state returned by rank 0 (``None`` fields elsewhere)."""

    steps: int
    time: float
    density: np.ndarray | None
    pressure: np.ndarray | None
    #: reaction-progress (dissociation) field, reactive runs only
    progress: np.ndarray | None = None


def _primitive(rho, mx, my, e):
    """Primitive variables from conserved state (operates on any arrays)."""
    u = mx / rho
    v = my / rho
    p = (GAMMA - 1.0) * (e - 0.5 * rho * (u * u + v * v))
    return u, v, p


def _shift(a: np.ndarray, g: int, di: int, dj: int) -> np.ndarray:
    """Owned-region view of ghosted array *a* shifted by (di, dj)."""
    n0, n1 = a.shape
    return a[g + di : n0 - g + di, g + dj : n1 - g + dj]


def _shift_region(
    a: np.ndarray, g: int, di: int, dj: int, region: tuple[slice, ...]
) -> np.ndarray:
    """View of ghosted array *a* at *region* (owned-interior coordinates)
    shifted by (di, dj) — the regionised form of :func:`_shift`."""
    si, sj = region
    return a[
        g + si.start + di : g + si.stop + di, g + sj.start + dj : g + sj.stop + dj
    ]


def shock_interface_ic(i: np.ndarray, j: np.ndarray, nx: int, ny: int, mach: float = 2.0):
    """Initial condition: a right-moving Mach-*mach* shock at x = nx/8
    about to hit a sinusoidal density interface at x = nx/4 (Figure 19).

    Returns conserved state arrays (rho, rho*u, rho*v, E).
    """
    shape = np.broadcast(i, j).shape
    x = np.broadcast_to(i, shape) / nx
    y = np.broadcast_to(j, shape) / ny

    # Quiescent pre-shock gas: rho = 1 with a sinusoidal interface beyond
    # x = 0.25, p = 1.
    rho = np.ones(shape)
    interface = x > 0.25 + 0.05 * np.sin(2.0 * np.pi * 4.0 * y)
    rho = np.where(interface, 2.0, rho)
    p = np.ones(shape)
    u = np.zeros(shape)

    # Post-shock state from the Rankine-Hugoniot relations for a Mach-M
    # shock moving into (rho=1, p=1, u=0).
    m2 = mach * mach
    rho2 = (GAMMA + 1.0) * m2 / ((GAMMA - 1.0) * m2 + 2.0)
    p2 = (2.0 * GAMMA * m2 - (GAMMA - 1.0)) / (GAMMA + 1.0)
    c1 = np.sqrt(GAMMA)  # sound speed of the pre-shock state
    u2 = mach * c1 * (1.0 - 1.0 / rho2)
    behind = x < 0.125
    rho = np.where(behind, rho2, rho)
    p = np.where(behind, p2, p)
    u = np.where(behind, u2, u)

    v = np.zeros(shape)
    e = p / (GAMMA - 1.0) + 0.5 * rho * (u * u + v * v)
    return rho, rho * u, rho * v, e


def uniform_flow_ic(i: np.ndarray, j: np.ndarray, nx: int, ny: int, mach: float = 2.0):
    """Smooth periodic benchmark state: uniform flow plus a density wave."""
    shape = np.broadcast(i, j).shape
    x = np.broadcast_to(i, shape) / nx
    y = np.broadcast_to(j, shape) / ny
    rho = 1.0 + 0.2 * np.sin(2 * np.pi * (x + y))
    u = np.full(shape, 0.5)
    v = np.full(shape, -0.3)
    p = np.ones(shape)
    e = p / (GAMMA - 1.0) + 0.5 * rho * (u * u + v * v)
    return rho, rho * u, rho * v, e


def cfd_program(
    mesh: MeshContext,
    nx: int,
    ny: int,
    steps: int,
    ic: str = "shock",
    cfl: float = 0.4,
    periodic: bool = False,
    gather: bool = True,
    packed_exchange: bool = True,
    cfl_interval: int = 1,
    reactive: bool = False,
    overlap: bool = True,
) -> CFDResult:
    """Per-process body of the compressible-flow code.

    ``ic`` selects the initial condition (``"shock"`` for the Figure 19
    scenario with outflow boundaries, ``"smooth"`` for a periodic
    benchmark state).  Per step: one boundary exchange of the state
    (all components packed into one message per neighbour when
    ``packed_exchange`` is set, as production codes do) and — every
    ``cfl_interval`` steps — a max-reduction of the wave speed for the
    CFL time step.

    ``reactive=True`` runs the paper's *second* CFD code (Figure 20): a
    fifth conserved field ``rho * lambda`` tracks an ideal-dissociating-
    gas progress variable that relaxes toward dissociation in hot
    shocked gas, absorbing energy — the shock/interface interaction
    "with IDG chemistry".

    With *overlap* (default, packed exchange only) the boundary exchange
    runs nonblocking and cells away from the section edge update while
    slabs travel.  The Lax–Friedrichs stencil is a star (axis-aligned
    ±1 reads only) and the CFL speed is reduced over owned interiors, so
    results are bitwise identical to the blocking path.
    """
    mesh.overlap = overlap
    dx, dy = 1.0 / nx, 1.0 / ny
    ncomp = 5 if reactive else 4
    state = [mesh.grid((nx, ny), ghost=1) for _ in range(ncomp)]
    new_state = [mesh.grid((nx, ny), ghost=1) for _ in range(ncomp)]
    ii, jj = state[0].coord_arrays()
    ic_fn = shock_interface_ic if ic == "shock" else uniform_flow_ic
    for grid, field in zip(state, ic_fn(ii, jj, nx, ny)):
        grid.interior[...] = field
    # reactive: rho*lambda starts at zero everywhere (undissociated gas)

    t = 0.0
    g = 1  # ghost width
    wrap = bool(periodic or ic == "smooth")
    dt = 0.0
    for step in range(steps):
        # CFL time step from the global maximum wave speed: a reduction
        # whose result (a copy-consistent global) every rank holds.
        # Recomputed every `cfl_interval` steps, as production codes do.
        # The speed is evaluated over owned interiors only — ghost cells
        # replicate some rank's owned values, so the global maximum is
        # unchanged — which keeps it independent of the exchange and
        # lets the exchange overlap the flux computation below.
        if step % cfl_interval == 0:
            rho_i, mx_i, my_i, e_i = (grid.interior for grid in state[:4])
            u_i, v_i, p_i = _primitive(rho_i, mx_i, my_i, e_i)
            c = np.sqrt(GAMMA * np.clip(p_i, 1e-12, None) / rho_i)
            local_speed = (
                float(np.max(np.abs(u_i) + c + np.abs(v_i) + c))
                if rho_i.size
                else 0.0
            )
            mesh.charge(6.0 * rho_i.size, label="wave-speed")
            smax = mesh.reduce(local_speed, MAX)
            dt = cfl * min(dx, dy) / max(smax, 1e-12)

        rho, mx, my, e = (grid.local for grid in state[:4])
        rl = state[4].local if reactive else None

        def lf_update(region: tuple[slice, ...]) -> None:
            # Lax–Friedrichs update restricted to *region*: fluxes are
            # evaluated directly on each shifted window (elementwise ops
            # commute with slicing, so this is bitwise identical to
            # evaluating whole-array fluxes and then shifting).
            def sh(a, di, dj):
                return _shift_region(a, g, di, dj, region)

            def fluxes(di, dj):
                r = sh(rho, di, dj)
                mxs, mys, es = sh(mx, di, dj), sh(my, di, dj), sh(e, di, dj)
                u_, v_, p_ = _primitive(r, mxs, mys, es)
                fx = [mxs, mxs * u_ + p_, mys * u_, u_ * (es + p_)]
                gy = [mys, mxs * v_, mys * v_ + p_, v_ * (es + p_)]
                if reactive:
                    rls = sh(rl, di, dj)  # rho * lambda, advected with the flow
                    fx.append(rls * u_)
                    gy.append(rls * v_)
                return fx, gy

            fx_e, _ = fluxes(1, 0)
            fx_w, _ = fluxes(-1, 0)
            _, gy_n = fluxes(0, 1)
            _, gy_s = fluxes(0, -1)
            for k in range(ncomp):
                cons = state[k].local
                new_state[k].interior[region] = (
                    0.25
                    * (
                        sh(cons, 1, 0)
                        + sh(cons, -1, 0)
                        + sh(cons, 0, 1)
                        + sh(cons, 0, -1)
                    )
                    - dt / (2 * dx) * (fx_e[k] - fx_w[k])
                    - dt / (2 * dy) * (gy_n[k] - gy_s[k])
                )

        if packed_exchange:
            mesh.overlapped_update(
                state,
                lf_update,
                writes=new_state,
                periodic=wrap,
                fill_edges=None if wrap else "copy",
                flops_per_point=FLOPS_PER_CELL,
                label="lf-update",
            )
        else:
            # Unpacked ablation path (one message per component per
            # neighbour); always blocking.
            for grid in state:
                grid.exchange(periodic=wrap)
                if not wrap:
                    grid.fill_edge_ghosts(mode="copy")
            mesh.charge(FLOPS_PER_CELL * state[0].interior.size, label="lf-update")
            lf_update(tuple(slice(0, n) for n in state[0].interior.shape))
        state, new_state = new_state, state

        if reactive:
            # Pointwise IDG chemistry on the owned section: hot gas
            # dissociates (lambda -> 1), absorbing IDG_HEAT per unit of
            # newly dissociated mass.
            mesh.charge(CHEM_FLOPS_PER_CELL * state[0].interior.size, label="idg-chem")
            rho_i = state[0].interior
            e_i = state[3].interior
            rl_i = state[4].interior
            mx_i, my_i = state[1].interior, state[2].interior
            _, _, p_i = _primitive(rho_i, mx_i, my_i, e_i)
            temperature = np.clip(p_i, 1e-12, None) / rho_i
            lam = np.clip(rl_i / rho_i, 0.0, 1.0)
            rate = IDG_RATE * (1.0 - lam) * np.exp(-IDG_T_ACT / temperature)
            d_lam = np.minimum(dt * rate, 1.0 - lam)
            rl_i[...] = rho_i * (lam + d_lam)
            e_i[...] -= IDG_HEAT * rho_i * d_lam
        t += dt

    rho_full = None
    pressure = None
    progress = None
    if gather:
        rho_full = state[0].gather(root=0)
        mx_f = state[1].gather(root=0)
        my_f = state[2].gather(root=0)
        e_f = state[3].gather(root=0)
        if reactive:
            rl_f = state[4].gather(root=0)
            if mesh.comm.rank == 0:
                progress = np.clip(rl_f / rho_full, 0.0, 1.0)
        if mesh.comm.rank == 0:
            _, _, pressure = _primitive(rho_full, mx_f, my_f, e_f)
    return CFDResult(
        steps=steps,
        time=t,
        density=rho_full if mesh.comm.rank == 0 else None,
        pressure=pressure,
        progress=progress,
    )


def cfd_archetype() -> MeshProgram:
    """Archetype driver for the compressible-flow code."""
    return MeshProgram(cfd_program, app_name="cfd")


def sequential_cfd_time(nx: int, ny: int, steps: int, machine: MachineModel) -> float:
    """Virtual time of the sequential solver (same per-cell work, no comm)."""
    work = (FLOPS_PER_CELL + 6.0) * nx * ny * steps
    return machine.compute_time(work, working_set_bytes=8.0 * 8 * nx * ny)
