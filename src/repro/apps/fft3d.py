"""Distributed three-dimensional FFT — the N-dimensional extension of the
paper's §4.4 program.

Slab decomposition: with the grid distributed along axis 0, axes 1 and 2
are whole on every rank and transform locally (two axis operations); one
redistribution to an axis-1 slab layout makes axis 0 whole, the final
axis operation transforms it, and a second redistribution restores the
original layout.  The same Figure 7 dataflow as the 2-D program, one
dimension up.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.grid import DistGrid
from repro.core.meshspectral import MeshContext, MeshProgram
from repro.apps.fftlib import fft, fft_cost
from repro.machines.model import MachineModel


def fft3d_program(
    mesh: MeshContext,
    full: np.ndarray | None,
    inverse: bool = False,
) -> np.ndarray | None:
    """Per-process body of the 3-D FFT; input on rank 0, result on rank 0."""
    if full is not None:
        full = np.asarray(full, dtype=np.complex128)
    p = mesh.comm.size
    slab0 = (p, 1, 1)  # axis 0 distributed; axes 1, 2 whole
    slab1 = (1, p, 1)  # axis 1 distributed; axes 0, 2 whole
    grid = DistGrid.from_global(mesh.comm, full, dist=slab0)
    n0, n1, n2 = grid.global_shape

    mesh.axis_op(
        lambda block: fft(block, inverse=inverse, axis=-1),
        grid,
        axis=2,
        flops_per_vector=fft_cost(n2),
        label="fft-z",
    )
    mesh.axis_op(
        lambda block: fft(block, inverse=inverse, axis=-1),
        grid,
        axis=1,
        flops_per_vector=fft_cost(n1),
        label="fft-y",
    )
    grid = mesh.redistribute(grid, slab1)
    mesh.axis_op(
        lambda block: fft(block, inverse=inverse, axis=-1),
        grid,
        axis=0,
        flops_per_vector=fft_cost(n0),
        label="fft-x",
    )
    grid = mesh.redistribute(grid, slab0)
    return grid.gather(root=0)


def fft3d_archetype() -> MeshProgram:
    """Archetype driver for the distributed 3-D FFT."""
    return MeshProgram(fft3d_program, app_name="fft3d")


def sequential_fft3d_time(shape: tuple[int, int, int], machine: MachineModel) -> float:
    """Virtual time of the sequential 3-D FFT baseline."""
    n0, n1, n2 = shape
    work = (
        fft_cost(n2) * n0 * n1 + fft_cost(n1) * n0 * n2 + fft_cost(n0) * n1 * n2
    )
    return machine.compute_time(work, working_set_bytes=16.0 * n0 * n1 * n2)


def run_fft3d(nprocs: int, array: np.ndarray, **kwargs: Any):
    """Convenience wrapper mirroring :func:`repro.apps.fft2d.run_fft2d`."""
    return fft3d_archetype().run(nprocs, np.asarray(array), **kwargs)
