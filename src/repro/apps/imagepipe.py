"""Streaming image-filter pipeline on the pipeline/farm archetype.

A stream of grayscale frames flows through four stages:

1. ``normalize`` — rescale each frame to [0, 1] (readonly state);
2. ``blur`` — 3×3 box filter, the expensive stage, replicated into a
   farm (:class:`~repro.core.pipeline.FarmStage`) whose width is the
   experiment's knob (readonly state: the shared kernel footprint);
3. ``edge`` — central-difference gradient magnitude (readonly);
4. ``stats`` — fold per-frame mean edge strength into a running
   ``(frames, total)`` accumulator (accumulator state, combined across
   workers in canonical order).

The blur costs ~9 mul-adds per pixel against ~3 (normalize) and ~8
(edge) flops, so widening the blur farm raises throughput until the
edge stage saturates — the shape the bench figure plots.  All stage
callbacks are pure NumPy with a fixed operation order, so outputs are
bitwise identical on every backend.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.pipeline import FarmStage, PipelineArchetype, Stage, StateAccess


def make_images(
    count: int = 8, shape: tuple[int, int] = (16, 16), seed: int = 0
) -> list[np.ndarray]:
    """A reproducible stream of float64 test frames."""
    rng = np.random.default_rng(seed)
    return [rng.normal(size=shape) for _ in range(count)]


def _pixels(img: np.ndarray) -> int:
    return int(img.shape[0]) * int(img.shape[1])


def _normalize(ctx, img: np.ndarray, state) -> np.ndarray:
    lo = float(img.min())
    span = float(img.max()) - lo
    return (img - lo) / (span if span > 0.0 else 1.0)


def _box3(img: np.ndarray) -> np.ndarray:
    """3×3 box filter with edge-replicated padding, fixed summation order."""
    p = np.pad(img, 1, mode="edge")
    h, w = img.shape
    out = np.zeros_like(img)
    for di in range(3):
        for dj in range(3):
            out += p[di:di + h, dj:dj + w]
    return out / 9.0


def _blur(ctx, img: np.ndarray, state) -> np.ndarray:
    return _box3(img)


def _edge(ctx, img: np.ndarray, state) -> np.ndarray:
    gx = np.zeros_like(img)
    gy = np.zeros_like(img)
    gx[:, 1:-1] = (img[:, 2:] - img[:, :-2]) / 2.0
    gy[1:-1, :] = (img[2:, :] - img[:-2, :]) / 2.0
    return np.sqrt(gx * gx + gy * gy)


def _stats(ctx, img: np.ndarray, state) -> tuple[np.ndarray, tuple[int, float]]:
    frames, total = state
    return img, (frames + 1, total + float(img.mean()))


def imagepipe_archetype(
    blur_workers: int = 2, window: int = 4, ordered: bool = True
) -> PipelineArchetype:
    """The image pipeline with a ``blur_workers``-wide blur farm.

    ``run(pipeline.nprocs, images)``; the collector's list holds the
    edge-magnitude frames, and ``accumulated_state(result, "stats")``
    the ``(frames, total_mean_edge)`` fold.
    """
    return PipelineArchetype(
        [
            Stage("normalize", _normalize, work_cost=lambda img: 3.0 * _pixels(img)),
            FarmStage(
                "blur", _blur, workers=blur_workers,
                work_cost=lambda img: 18.0 * _pixels(img),
            ),
            Stage("edge", _edge, work_cost=lambda img: 8.0 * _pixels(img)),
            Stage(
                "stats",
                _stats,
                state_access=StateAccess.ACCUMULATOR,
                init_state=lambda w: (0, 0.0),
                combine=lambda a, b: (a[0] + b[0], a[1] + b[1]),
                work_cost=lambda img: float(_pixels(img)),
            ),
        ],
        window=window,
        ordered=ordered,
        emit_cost=lambda img: float(_pixels(img)),
    )


def sequential_reference(
    images: Sequence[np.ndarray],
) -> tuple[list[np.ndarray], tuple[int, float]]:
    """What the pipeline must produce: the same filters, run in-order."""
    outputs = []
    stats = (0, 0.0)
    for img in images:
        out = _edge(None, _blur(None, _normalize(None, img, None), None), None)
        stats = _stats(None, out, stats)[1]
        outputs.append(out)
    return outputs, stats
