"""Spectral incompressible-flow code (paper §4.5.3).

The paper's application solves the three-dimensional Euler equations for
incompressible flow with axisymmetry: periodic in the axial direction
(Fourier spectral method) and finite differences in the radial
direction, on the two-dimensional *spectral* archetype.

We implement the axisymmetric-with-swirl model in vorticity–streamfunction
form on an (r, z) grid, with the paper's computational structure:

- **row operations**: forward/inverse FFT along the periodic axial (z)
  direction (data by rows — each rank owns all z for its r-range);
- **column operations**: per-axial-mode Helmholtz solves
  ``(d²/dr² - k²) psi_k = -omega_k`` by the Thomas algorithm (data by
  columns — each rank owns all r for its mode range);
- **redistributions** between the two layouts every step (Figure 7);
- **grid operations**: velocities from psi by central differences,
  upwind advection of vorticity and of the azimuthal (swirl) velocity;
- **reduction**: CFL time-step control.

Physics simplifications vs. the production code (documented in
DESIGN.md): second-order rather than fourth-order radial differences,
and the cylindrical metric terms are dropped (slab symmetry), which
preserves the archetype's dataflow and cost structure exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.meshspectral import MeshContext, MeshProgram
from repro.comm.reductions import MAX
from repro.apps.fftlib import fft, fft_cost, fft_frequencies
from repro.kernels import READ, WRITE, Arg
from repro.machines.model import MachineModel

#: flops charged per point per step for the finite-difference part
FD_FLOPS_PER_POINT = 40.0
#: flops charged per tridiagonal unknown in the Helmholtz solves
THOMAS_FLOPS_PER_POINT = 8.0


@dataclass
class SpectralFlowResult:
    """Flow state after the run."""

    steps: int
    time: float
    #: max |vorticity| at the end (identical on all ranks)
    max_vorticity: float
    #: azimuthal (swirl) velocity field on rank 0 (``None`` elsewhere)
    swirl: np.ndarray | None


def thomas_solve(lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Thomas algorithm for a batch of tridiagonal systems.

    ``diag`` has shape ``(m, n)`` — m independent systems of n unknowns;
    ``lower``/``upper`` are the off-diagonals (length n, shared across the
    batch); ``rhs`` has shape ``(m, n)``.  Returns the solutions, shape
    ``(m, n)``.
    """
    m, n = rhs.shape
    cp = np.empty((m, n), dtype=rhs.dtype)
    dp = np.empty((m, n), dtype=rhs.dtype)
    cp[:, 0] = upper[0] / diag[:, 0]
    dp[:, 0] = rhs[:, 0] / diag[:, 0]
    for i in range(1, n):
        denom = diag[:, i] - lower[i] * cp[:, i - 1]
        cp[:, i] = (upper[i] if i < n - 1 else 0.0) / denom
        dp[:, i] = (rhs[:, i] - lower[i] * dp[:, i - 1]) / denom
    x = np.empty_like(dp)
    x[:, -1] = dp[:, -1]
    for i in range(n - 2, -1, -1):
        x[:, i] = dp[:, i] - cp[:, i] * x[:, i + 1]
    return x


def vortex_ic(i: np.ndarray, j: np.ndarray, nr: int, nz: int):
    """Initial condition: a vortex patch with an embedded swirl core."""
    shape = np.broadcast(i, j).shape
    r = np.broadcast_to(i, shape) / nr
    z = np.broadcast_to(j, shape) / nz
    # Periodic distance in z so the patch is smooth across the seam.
    d2 = (r - 0.5) ** 2 + (np.minimum(np.abs(z - 0.5), 1.0 - np.abs(z - 0.5))) ** 2
    omega = 10.0 * np.exp(-d2 / 0.02)
    swirl = 2.0 * np.exp(-d2 / 0.01)
    return omega, swirl


def spectralflow_program(
    mesh: MeshContext,
    nr: int,
    nz: int,
    steps: int,
    dt: float | None = None,
    nu: float = 1e-3,
    gather: bool = True,
) -> SpectralFlowResult:
    """Per-process body of the spectral flow code.

    Grid axes: axis 0 = radial r (wall boundaries, psi = 0), axis 1 =
    axial z (periodic).  Data lives by rows (r distributed) for the
    physical-space and FFT stages and is redistributed to columns for the
    per-mode radial solves.
    """
    dr, dz = 1.0 / nr, 1.0 / nz
    omega = mesh.grid((nr, nz), dist="rows", ghost=1)
    swirl = mesh.grid((nr, nz), dist="rows", ghost=1)
    ii, jj = omega.coord_arrays()
    om0, sw0 = vortex_ic(ii, jj, nr, nz)
    omega.interior[...] = om0
    swirl.interior[...] = sw0
    # ~10 full-grid working arrays resident per rank; drives the machine's
    # paging model (the paper's Figure 18 base-configuration anomaly).
    mesh.set_working_set(10 * 8.0 * max(omega.interior.size, 1))

    # Modal wavenumbers for the axial direction.
    kz = 2.0 * np.pi * fft_frequencies(nz, d=dz)

    t = 0.0
    max_vort = 0.0
    for _ in range(steps):
        # --- streamfunction solve: FFT in z (row op) -------------------
        omega_hat = mesh.grid((nr, nz), dist="rows", dtype=np.complex128)
        omega_hat.interior[...] = omega.interior
        mesh.row_op(
            lambda block: fft(block, axis=1),
            omega_hat,
            flops_per_row=fft_cost(nz),
            label="fft-z",
        )

        # --- per-mode Helmholtz solve in r (column op, cols layout) ----
        hat_cols = mesh.redistribute(omega_hat, "cols")

        def helmholtz(modes: np.ndarray) -> np.ndarray:
            # modes: (local_nmodes, nr); solve (D2 - k^2) psi = -omega
            # with psi = 0 at both radial walls (rows of the transposed
            # block are mode vectors over r).
            m = modes.shape[0]
            lo, _ = hat_cols.rect[1]
            k = kz[lo : lo + m]
            lower = np.full(nr, 1.0 / dr**2)
            upper = np.full(nr, 1.0 / dr**2)
            diag = (-2.0 / dr**2) - (k[:, None] ** 2) * np.ones((m, nr))
            # Dirichlet walls: fix the first/last unknown to zero.
            diag[:, 0] = 1.0
            diag[:, -1] = 1.0
            rhs = -modes.copy()
            rhs[:, 0] = 0.0
            rhs[:, -1] = 0.0
            upper0 = upper.copy()
            lower0 = lower.copy()
            upper0[0] = 0.0
            lower0[-1] = 0.0
            return thomas_solve(lower0, diag, upper0, rhs)

        mesh.col_op(
            helmholtz,
            hat_cols,
            flops_per_col=THOMAS_FLOPS_PER_POINT * nr,
            label="helmholtz-r",
        )

        # --- inverse FFT in z (back to rows, row op) -------------------
        psi_hat = mesh.redistribute(hat_cols, "rows")
        mesh.row_op(
            lambda block: fft(block, inverse=True, axis=1),
            psi_hat,
            flops_per_row=fft_cost(nz),
            label="ifft-z",
        )
        psi = mesh.grid((nr, nz), dist="rows", ghost=1)
        psi.interior[...] = psi_hat.interior.real

        # --- velocities from psi (declared stencil par-loops) ----------
        # Both loops read psi at halo 1; the kernel layer exchanges
        # psi's ghosts once for the first loop and *hoists* the second
        # exchange automatically (the historical code hand-managed this
        # with an ``exchange=False`` flag).
        ur = mesh.grid((nr, nz), dist="rows", ghost=1)  # radial velocity
        uz = mesh.grid((nr, nz), dist="rows", ghost=1)  # axial velocity
        with mesh.fuse():
            mesh.parloop(
                lambda out, p: out.__setitem__(..., (p[0, 1] - p[0, -1]) / (2 * dz)),
                Arg(ur, WRITE),
                Arg(psi, READ, halo=1, periodic=(False, True)),
                margin=0,
                flops_per_point=3.0,
                label="ur",
            )
            mesh.parloop(
                lambda out, p: out.__setitem__(..., -(p[1, 0] - p[-1, 0]) / (2 * dr)),
                Arg(uz, WRITE),
                Arg(psi, READ, halo=1, periodic=(False, True)),
                margin=(1, 0),
                flops_per_point=3.0,
                label="uz",
            )

        # --- CFL-controlled time step (global reduction) ---------------
        local_speed = float(
            np.max(np.abs(ur.interior) / dz + np.abs(uz.interior) / dr)
        ) if ur.interior.size else 0.0
        mesh.charge(4.0 * ur.interior.size, label="cfl")
        smax = mesh.reduce(local_speed, MAX)
        step_dt = dt if dt is not None else 0.4 / max(smax, 1e-12)

        # --- advect omega and swirl (upwind stencil par-loops) ----------
        # The two advections share a region and access pattern, so they
        # fuse into one tiled walk, and their ghost refreshes pack into
        # one message per neighbour per direction.  The velocities are
        # declared halo-0 reads (the body uses only the centre value),
        # so — unlike the historical stencil-input formulation — they
        # need no ghost exchange at all.
        advect = _upwind_update(dr, dz, step_dt, nu)
        new_om = omega.like()
        new_sw = swirl.like()

        def copy_field(dst: np.ndarray, src: np.ndarray) -> None:
            dst[...] = src

        with mesh.fuse():
            for field, new in ((omega, new_om), (swirl, new_sw)):
                mesh.parloop(
                    advect,
                    Arg(new, WRITE),
                    Arg(field, READ, halo=1, periodic=(False, True)),
                    Arg(ur, READ),
                    Arg(uz, READ),
                    margin=(1, 0),
                    flops_per_point=FD_FLOPS_PER_POINT / 2,
                    label="advect",
                )
            for field, new in ((omega, new_om), (swirl, new_sw)):
                mesh.parloop(
                    copy_field,
                    Arg(field, WRITE),
                    Arg(new, READ),
                    label="copy-advected",
                )
        t += step_dt

    local_max = float(np.max(np.abs(omega.interior))) if omega.interior.size else 0.0
    max_vort = mesh.reduce(local_max, MAX)
    swirl_full = swirl.gather(root=0) if gather else None
    return SpectralFlowResult(
        steps=steps,
        time=t,
        max_vorticity=float(max_vort),
        swirl=swirl_full if mesh.comm.rank == 0 else None,
    )


def _upwind_update(dr: float, dz: float, dt: float, nu: float):
    """First-order upwind advection + central diffusion of one scalar.

    The returned callback has the views-kernel signature
    ``fn(out, q, u_r, u_z)``: *q* is a stencil view (declared halo 1),
    the velocities plain aligned views (declared halo 0).
    """

    def update(out: np.ndarray, q, u_r: np.ndarray, u_z: np.ndarray) -> None:
        adv_r = np.where(
            u_r > 0,
            u_r * (q[0, 0] - q[-1, 0]) / dr,
            u_r * (q[1, 0] - q[0, 0]) / dr,
        )
        adv_z = np.where(
            u_z > 0,
            u_z * (q[0, 0] - q[0, -1]) / dz,
            u_z * (q[0, 1] - q[0, 0]) / dz,
        )
        lap = (q[1, 0] - 2 * q[0, 0] + q[-1, 0]) / dr**2 + (
            q[0, 1] - 2 * q[0, 0] + q[0, -1]
        ) / dz**2
        out[...] = q[0, 0] - dt * (adv_r + adv_z) + dt * nu * lap

    return update


def spectralflow_archetype() -> MeshProgram:
    """Archetype driver for the spectral flow code."""
    return MeshProgram(spectralflow_program, app_name="spectralflow")


def sequential_spectralflow_time(
    nr: int, nz: int, steps: int, machine: MachineModel
) -> float:
    """Virtual time of the sequential baseline (all stages, no comm)."""
    per_step = (
        2.0 * fft_cost(nz) * nr  # forward + inverse FFT
        + THOMAS_FLOPS_PER_POINT * nr * nz  # Helmholtz solves
        + (FD_FLOPS_PER_POINT + 10.0) * nr * nz  # FD stages + CFL
    )
    return machine.compute_time(
        per_step * steps, working_set_bytes=8.0 * 10 * nr * nz
    )
