"""Three-dimensional FDTD electromagnetics (paper §4.5.2).

The paper's electromagnetic scattering code uses a finite-difference
time-domain technique on the three-dimensional mesh archetype.  We
implement the Yee scheme: staggered E and H fields advanced by leapfrog
curl updates, a perfect-electric-conductor (PEC) boundary (tangential E
fixed at zero on the domain faces), and a sinusoidal soft source.  The
archetype structure per step: ghost exchange of the three E components,
H curl update, ghost exchange of the three H components, E curl update —
six boundary exchanges on a 3-D process grid.

Units are normalised (c = eps0 = mu0 = 1); the Courant factor keeps the
scheme stable for the unit grid spacing used here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.meshspectral import MeshContext, MeshProgram
from repro.comm.reductions import SUM
from repro.machines.model import MachineModel

#: flops charged per cell per full time step (both curl updates)
FLOPS_PER_CELL = 36.0


@dataclass
class FDTDResult:
    """Field state after the run."""

    steps: int
    #: total electromagnetic field energy (identical on all ranks)
    energy: float
    #: Ez field on rank 0 (``None`` elsewhere / when not gathered)
    ez: np.ndarray | None


def _d(
    a: np.ndarray, axis: int, g: int, region: tuple[slice, ...]
) -> np.ndarray:
    """Forward difference along *axis*, aligned with the owned cells
    selected by *region* (owned-interior coordinates): ``a[i+1] - a[i]``."""
    lo = tuple(slice(s.start + g, s.stop + g) for s in region)
    hi = tuple(
        slice(s.start + g + 1, s.stop + g + 1)
        if d == axis
        else slice(s.start + g, s.stop + g)
        for d, s in enumerate(region)
    )
    return a[hi] - a[lo]


def _db(
    a: np.ndarray, axis: int, g: int, region: tuple[slice, ...]
) -> np.ndarray:
    """Backward difference along *axis* over the selected owned cells:
    ``a[i] - a[i-1]``."""
    lo = tuple(
        slice(s.start + g - 1, s.stop + g - 1)
        if d == axis
        else slice(s.start + g, s.stop + g)
        for d, s in enumerate(region)
    )
    hi = tuple(slice(s.start + g, s.stop + g) for s in region)
    return a[hi] - a[lo]


def fdtd_program(
    mesh: MeshContext,
    nx: int,
    ny: int,
    nz: int,
    steps: int,
    source_freq: float = 0.05,
    courant: float = 0.5,
    gather: bool = True,
    overlap: bool = True,
) -> FDTDResult:
    """Per-process body of the FDTD code.

    A soft sinusoidal source drives Ez at the domain centre; after
    *steps* leapfrog updates the total field energy (a sum reduction) and
    optionally the Ez field are returned.

    With *overlap* (default) the packed E/H boundary exchanges run
    nonblocking and deep cells update while slabs travel; the curl is a
    star stencil, so results are bitwise identical to the blocking path.
    """
    mesh.overlap = overlap
    shape = (nx, ny, nz)
    e = [mesh.grid(shape, ghost=1) for _ in range(3)]  # Ex, Ey, Ez
    h = [mesh.grid(shape, ghost=1) for _ in range(3)]  # Hx, Hy, Hz
    dt = courant  # dx = dy = dz = 1 in normalised units

    centre = (nx // 2, ny // 2, nz // 2)
    ez_grid = e[2]
    rect = ez_grid.rect
    owns_source = all(lo <= c < hi for c, (lo, hi) in zip(centre, rect))
    local_source = tuple(c - lo + ez_grid.ghost for c, (lo, _) in zip(centre, rect))

    g = 1
    ex, ey, ez = (grid.local for grid in e)
    hx, hy, hz = (grid.local for grid in h)

    def h_update(region: tuple[slice, ...]) -> None:
        # H -= dt * curl E, restricted to *region* of the owned cells.
        h[0].interior[region] -= dt * (_d(ez, 1, g, region) - _d(ey, 2, g, region))
        h[1].interior[region] -= dt * (_d(ex, 2, g, region) - _d(ez, 0, g, region))
        h[2].interior[region] -= dt * (_d(ey, 0, g, region) - _d(ex, 1, g, region))

    def e_update(region: tuple[slice, ...]) -> None:
        # E += dt * curl H.
        e[0].interior[region] += dt * (_db(hz, 1, g, region) - _db(hy, 2, g, region))
        e[1].interior[region] += dt * (_db(hx, 2, g, region) - _db(hz, 0, g, region))
        e[2].interior[region] += dt * (_db(hy, 0, g, region) - _db(hx, 1, g, region))

    for step in range(steps):
        # Packed exchange of the three E components, then the H curl
        # update (overlapped over the deep cells when enabled); then the
        # mirrored half-step for H -> E.
        mesh.overlapped_update(
            e, h_update, writes=h, flops_per_point=FLOPS_PER_CELL / 2, label="h-update"
        )
        mesh.overlapped_update(
            h, e_update, writes=e, flops_per_point=FLOPS_PER_CELL / 2, label="e-update"
        )

        # Soft source on the rank owning the centre cell.
        if owns_source:
            ez_grid.local[local_source] += np.sin(
                2.0 * np.pi * source_freq * (step + 1) * dt
            )

        # PEC boundary: tangential E on the domain faces stays zero.
        _apply_pec(e)

    # Total field energy: sum reduction; every rank holds the result
    # (paper §3.2 postcondition), so the return value is P-invariant.
    local_energy = sum(float(np.sum(grid.interior**2)) for grid in e + h)
    mesh.charge(2.0 * 6 * e[0].interior.size, label="energy")
    energy = mesh.reduce(local_energy, SUM)

    ez_full = e[2].gather(root=0) if gather else None
    return FDTDResult(
        steps=steps,
        energy=float(energy),
        ez=ez_full if mesh.comm.rank == 0 else None,
    )


def _apply_pec(e_grids) -> None:
    """Zero the tangential electric field on physical domain faces."""
    for axis in range(3):
        for comp, grid in enumerate(e_grids):
            if comp == axis:
                continue  # normal component is unconstrained
            lo, hi = grid.rect[axis]
            gw = grid.ghost
            n = grid.local.shape[axis]
            if lo == 0:
                sel = tuple(
                    slice(gw, gw + 1) if d == axis else slice(gw, grid.local.shape[d] - gw)
                    for d in range(3)
                )
                grid.local[sel] = 0.0
            if hi == grid.global_shape[axis]:
                sel = tuple(
                    slice(n - gw - 1, n - gw)
                    if d == axis
                    else slice(gw, grid.local.shape[d] - gw)
                    for d in range(3)
                )
                grid.local[sel] = 0.0


def fdtd_archetype() -> MeshProgram:
    """Archetype driver for the FDTD code."""
    return MeshProgram(fdtd_program, app_name="fdtd")


def sequential_fdtd_time(
    nx: int, ny: int, nz: int, steps: int, machine: MachineModel
) -> float:
    """Virtual time of the sequential FDTD baseline (curl updates plus the
    final energy sweep, matching the parallel program's charges)."""
    work = FLOPS_PER_CELL * nx * ny * nz * steps + 12.0 * nx * ny * nz
    return machine.compute_time(work, working_set_bytes=8.0 * 6 * nx * ny * nz)
