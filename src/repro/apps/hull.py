"""Planar convex hull — a one-deep divide-and-conquer application.

The paper lists the convex hull among problems "amenable to one-deep
solutions" (§2.5).  The one-deep structure: degenerate split (points
already distributed), local solve computes each part's hull with Andrew's
monotone chain, and the merge phase exchanges only hull vertices (tiny
compared to the input) and computes the hull of their union on every
rank — the replicated-parameters strategy of §2.2 taken to its limit,
since the "parameters" are the whole (small) merged result.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.onedeep import OneDeepDC, PhaseSpec
from repro.apps.sorting.common import sort_cost


def cross(o: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
    """z-component of (a - o) x (b - o); > 0 for a counter-clockwise turn."""
    return float((a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]))


def convex_hull(points: np.ndarray) -> np.ndarray:
    """Andrew's monotone chain: hull vertices in counter-clockwise order.

    Collinear boundary points are dropped.  Degenerate inputs (<= 2
    distinct points) return the distinct points sorted lexicographically.
    """
    pts = np.unique(np.asarray(points, dtype=float).reshape(-1, 2), axis=0)
    n = pts.shape[0]
    if n <= 2:
        return pts
    lower: list[np.ndarray] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[np.ndarray] = []
    for p in pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = np.array(lower[:-1] + upper[:-1])
    if hull.shape[0] < 3:  # all points collinear
        return np.array([pts[0], pts[-1]])
    return hull


def hull_cost(n: int) -> float:
    """Analytic work of the monotone chain (sort-dominated)."""
    return sort_cost(n) + 6.0 * max(n, 0)


def one_deep_hull() -> OneDeepDC:
    """The one-deep convex hull archetype instance.

    After ``run(P, points)`` every rank returns the *same* global hull
    (counter-clockwise vertex array) — the merge is replicated.
    """
    merge = PhaseSpec(
        # The merge needs no separate parameters: every local hull is tiny.
        sample=lambda local_hull: None,
        params=lambda samples, n: None,
        # Replicate the local hull to every rank (an allgather expressed
        # in the archetype's all-to-all dataflow).
        partition=lambda params, local_hull, n: [local_hull] * n,
        combine=lambda hulls: convex_hull(
            np.vstack([np.asarray(h).reshape(-1, 2) for h in hulls])
        ),
        combine_cost=lambda combined: hull_cost(np.asarray(combined).reshape(-1, 2).shape[0] * 8),
    )
    return OneDeepDC(
        solve=convex_hull,
        solve_cost=lambda pts: hull_cost(np.asarray(pts).reshape(-1, 2).shape[0]),
        merge=merge,
    )


def hull_area(hull: np.ndarray) -> float:
    """Shoelace area of a counter-clockwise hull (0 for degenerate hulls)."""
    h = np.asarray(hull).reshape(-1, 2)
    if h.shape[0] < 3:
        return 0.0
    x, y = h[:, 0], h[:, 1]
    return 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


def point_in_hull(hull: np.ndarray, point: np.ndarray, tol: float = 1e-9) -> bool:
    """Is *point* inside (or on) a counter-clockwise hull?"""
    h = np.asarray(hull).reshape(-1, 2)
    p = np.asarray(point, dtype=float)
    if h.shape[0] == 0:
        return False
    if h.shape[0] == 1:
        return bool(np.allclose(h[0], p, atol=tol))
    if h.shape[0] == 2:
        d = h[1] - h[0]
        t = np.dot(p - h[0], d) / max(float(np.dot(d, d)), tol)
        proj = h[0] + np.clip(t, 0.0, 1.0) * d
        return bool(np.linalg.norm(p - proj) <= math.sqrt(tol))
    for i in range(h.shape[0]):
        if cross(h[i], h[(i + 1) % h.shape[0]], p) < -tol:
            return False
    return True
