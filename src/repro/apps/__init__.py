"""The paper's application suite.

One-deep divide-and-conquer applications (§2.4–§2.5):

- :mod:`repro.apps.sorting` — mergesort (sequential, traditional
  parallel, one-deep) and one-deep quicksort;
- :mod:`repro.apps.skyline` — the skyline problem;
- :mod:`repro.apps.hull` — planar convex hull;
- :mod:`repro.apps.nearest` — closest pair of points.

Mesh-spectral applications (§4):

- :mod:`repro.apps.fftlib` / :mod:`repro.apps.fft2d` — from-scratch 1-D
  FFT and the two-dimensional FFT program (§4.4.2);
- :mod:`repro.apps.poisson` — Jacobi Poisson solver (§4.4.3);
- :mod:`repro.apps.cfd` — 2-D compressible-flow code (§4.5.1);
- :mod:`repro.apps.fdtd` — 3-D FDTD electromagnetics (§4.5.2);
- :mod:`repro.apps.spectralflow` — axisymmetric spectral incompressible
  flow (§4.5.3);
- :mod:`repro.apps.smog` — airshed photochemical smog model (§4.5.4).

Beyond the paper, pipeline/farm applications (ROADMAP archetype growth):

- :mod:`repro.apps.knapsack` — 0/1 knapsack under branch and bound;
- :mod:`repro.apps.imagepipe` — streaming image-filter pipeline with a
  farmed blur stage;
- :mod:`repro.apps.knapfarm` — a stream of knapsack instances through a
  solver farm, reusing the branch-and-bound archetype's search.
"""
