"""Named application workloads: one registry from app names to runs.

Before this module each CLI kept its own ad-hoc app table — the obs CLI
(:mod:`repro.obs.workloads`), the wallclock/parallel bench ablations
(:mod:`repro.bench.wallclock`), the cross-backend digest matrix
(:mod:`repro.verify.crossbackend`), and the conformance registry
(:mod:`repro.verify.conformance`) all re-spelled "how do I run mergesort
on 4 ranks" with slightly different inputs.  The job server
(:mod:`repro.serve`) needs the same resolution over a wire protocol, so
the lookup becomes one shared source of truth: an :class:`AppSpec` per
application, resolvable by string, with JSON-able parameters (every knob
is a scalar with a default) so a request like ``{"app": "poisson",
"params": {"nx": 64}}`` fully determines a run.

Determinism contract: an app's runner derives *all* of its input from
the parameter dict (data seeds included), so two runs with equal
``(app, params, machine, backend, seed)`` produce bitwise-identical
digests — the property the serve result cache keys on.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ReproError
from repro.machines.catalog import IDEAL, get_machine
from repro.machines.model import MachineModel
from repro.runtime.spmd import RunResult


@dataclass(frozen=True)
class AppSpec:
    """One named workload: how to run an application from plain parameters."""

    #: registry key (the name requests and CLIs resolve)
    name: str
    #: archetype family the app exercises (diagnostics / grouping)
    archetype: str
    description: str
    #: ``runner(params, machine=..., mode=..., trace=...) -> RunResult``;
    #: *params* is :attr:`defaults` overlaid with the caller's overrides
    runner: Callable[..., RunResult]
    #: every knob the app accepts, with its default value (JSON-able
    #: scalars only, so specs serialise over the serve wire protocol)
    defaults: Mapping[str, Any]
    #: reduced sizes for verification runs (conformance programs and the
    #: cross-backend digest matrix) — overrides applied onto defaults
    verify_overrides: Mapping[str, Any] = field(default_factory=dict)

    def params_with(self, overrides: Mapping[str, Any] | None = None) -> dict:
        """Defaults overlaid with *overrides*; unknown keys are an error."""
        merged = dict(self.defaults)
        if overrides:
            unknown = sorted(set(overrides) - set(self.defaults))
            if unknown:
                raise ReproError(
                    f"app {self.name!r} has no parameter(s) {unknown}; "
                    f"knows {sorted(self.defaults)}"
                )
            merged.update(overrides)
        return merged

    def run(
        self,
        params: Mapping[str, Any] | None = None,
        *,
        machine: MachineModel | str = IDEAL,
        mode: str | None = None,
        trace: bool = False,
    ) -> RunResult:
        """Run the app with *params* overriding the registered defaults.

        When the tuned-config catalog holds a winner for (app, machine,
        nprocs) it is applied by default: tuned *parameter* knobs fill
        only the keys the caller left at their defaults (explicit params
        always win) and tuned runtime knobs (process grid, tile bytes,
        shm threshold) scope the run.  ``REPRO_TUNE=0`` disables the
        lookup; see :mod:`repro.tune.catalog`.
        """
        if isinstance(machine, str):
            machine = get_machine(machine)
        from repro.tune import catalog as tune_catalog

        merged = self.params_with(params)
        entry = tune_catalog.consult(
            self.name, machine.name, int(merged.get("nprocs", 0))
        )
        if entry is None:
            # No tuned entry (or consultation is off): suppress the
            # archetype-level lookup too — same key, same answer.
            with tune_catalog.disabled():
                return self.runner(merged, machine=machine, mode=mode, trace=trace)
        merged.update(
            {
                k: v
                for k, v in entry.config.params.items()
                if k in self.defaults and (params is None or k not in params)
            }
        )
        with tune_catalog.applying(entry.config):
            return self.runner(merged, machine=machine, mode=mode, trace=trace)


_REGISTRY: dict[str, AppSpec] = {}


def register(spec: AppSpec) -> AppSpec:
    """Add *spec* to the registry (idempotent for an identical re-register)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise ReproError(f"app {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a registration (tests use this to retract throwaway apps)."""
    _REGISTRY.pop(name, None)


def get(name: str) -> AppSpec:
    """The :class:`AppSpec` registered under *name*."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown app {name!r}; choose from {names()}"
        ) from None


def names() -> tuple[str, ...]:
    """Registered app names, registration order."""
    return tuple(_REGISTRY)


def specs() -> tuple[AppSpec, ...]:
    return tuple(_REGISTRY.values())


# ---------------------------------------------------------------------------
# Registered workloads.  Runners derive every input from the params dict
# (reproducible data seeds), so equal params mean equal digests.


def _run_mergesort(params: dict, *, machine, mode, trace) -> RunResult:
    from repro.apps.sorting.mergesort import one_deep_mergesort

    rng = np.random.default_rng(params["seed"])
    data = rng.integers(0, np.iinfo(np.int64).max, size=params["n"])
    return one_deep_mergesort().run(
        params["nprocs"], data, mode=mode, machine=machine, trace=trace
    )


def _run_poisson(params: dict, *, machine, mode, trace) -> RunResult:
    from repro.apps.poisson import poisson_archetype

    return poisson_archetype().run(
        params["nprocs"],
        params["nx"],
        params["ny"],
        tolerance=params["tolerance"],
        max_iters=params["max_iters"],
        gather_solution=params["gather_solution"],
        overlap=params["overlap"],
        mode=mode,
        machine=machine,
        trace=trace,
    )


def _run_cfd(params: dict, *, machine, mode, trace) -> RunResult:
    from repro.apps.cfd import cfd_archetype

    return cfd_archetype().run(
        params["nprocs"],
        params["nx"],
        params["ny"],
        params["steps"],
        ic=params["ic"],
        cfl=params["cfl"],
        periodic=params["periodic"],
        gather=params["gather"],
        packed_exchange=params["packed_exchange"],
        cfl_interval=params["cfl_interval"],
        reactive=params["reactive"],
        overlap=params["overlap"],
        mode=mode,
        machine=machine,
        trace=trace,
    )


def _run_fdtd(params: dict, *, machine, mode, trace) -> RunResult:
    from repro.apps.fdtd import fdtd_archetype

    return fdtd_archetype().run(
        params["nprocs"],
        params["nx"],
        params["ny"],
        params["nz"],
        params["steps"],
        source_freq=params["source_freq"],
        courant=params["courant"],
        gather=params["gather"],
        overlap=params["overlap"],
        mode=mode,
        machine=machine,
        trace=trace,
    )


def _run_smog(params: dict, *, machine, mode, trace) -> RunResult:
    from repro.apps.smog import smog_archetype

    return smog_archetype().run(
        params["nprocs"],
        params["nx"],
        params["ny"],
        params["steps"],
        dt=params["dt"],
        diffusion=params["diffusion"],
        chem_substeps=params["chem_substeps"],
        gather=params["gather"],
        mode=mode,
        machine=machine,
        trace=trace,
    )


def _run_spectralflow(params: dict, *, machine, mode, trace) -> RunResult:
    from repro.apps.spectralflow import spectralflow_archetype

    return spectralflow_archetype().run(
        params["nprocs"],
        params["nr"],
        params["nz"],
        steps=params["steps"],
        dt=params["dt"],
        nu=params["nu"],
        gather=params["gather"],
        mode=mode,
        machine=machine,
        trace=trace,
    )


def _run_fft2d(params: dict, *, machine, mode, trace) -> RunResult:
    from repro.apps.fft2d import fft2d_archetype

    rng = np.random.default_rng(params["seed"])
    array = rng.standard_normal((params["rows"], params["cols"]))
    return fft2d_archetype().run(
        params["nprocs"], array, params["repeats"], mode=mode, machine=machine, trace=trace
    )


def _run_imagepipe(params: dict, *, machine, mode, trace) -> RunResult:
    from repro.apps.imagepipe import imagepipe_archetype, make_images

    pipeline = imagepipe_archetype(
        blur_workers=params["width"], window=params["window"]
    )
    images = make_images(
        params["items"], (params["rows"], params["cols"]), seed=params["seed"]
    )
    return pipeline.run(
        pipeline.nprocs, images, mode=mode, machine=machine, trace=trace
    )


def _run_knapfarm(params: dict, *, machine, mode, trace) -> RunResult:
    from repro.apps.knapfarm import knapsack_farm, random_instances

    pipeline = knapsack_farm(workers=params["workers"], window=params["window"])
    instances = random_instances(
        params["instances"], nitems=params["nitems"], seed=params["seed"]
    )
    return pipeline.run(
        pipeline.nprocs, instances, mode=mode, machine=machine, trace=trace
    )


register(
    AppSpec(
        name="mergesort",
        archetype="one-deep-dc",
        description="one-deep mergesort (divide and conquer)",
        runner=_run_mergesort,
        defaults={"nprocs": 4, "n": 4096, "seed": 0},
        verify_overrides={"n": 512},
    )
)
register(
    AppSpec(
        name="poisson",
        archetype="mesh-spectral",
        description="Jacobi Poisson solver (mesh; ghost exchanges per sweep)",
        runner=_run_poisson,
        defaults={
            "nprocs": 4,
            "nx": 48,
            "ny": 48,
            "tolerance": 0.0,
            "max_iters": 8,
            "gather_solution": False,
            "overlap": True,
        },
        verify_overrides={"nx": 12, "ny": 12, "tolerance": 1e-3, "max_iters": 10_000},
    )
)
register(
    AppSpec(
        name="cfd",
        archetype="mesh-spectral",
        description="compressible-flow step loop (packed exchanges, CFL reductions)",
        runner=_run_cfd,
        defaults={
            "nprocs": 4,
            "nx": 32,
            "ny": 32,
            "steps": 3,
            "ic": "shock",
            "cfl": 0.4,
            "periodic": False,
            "gather": False,
            "packed_exchange": True,
            "cfl_interval": 1,
            "reactive": False,
            "overlap": True,
        },
        verify_overrides={"nx": 12, "ny": 12, "steps": 2},
    )
)
register(
    AppSpec(
        name="fdtd",
        archetype="mesh-spectral",
        description="3-D FDTD electromagnetics (leapfrog E/H updates)",
        runner=_run_fdtd,
        defaults={
            "nprocs": 4,
            "nx": 12,
            "ny": 12,
            "nz": 12,
            "steps": 2,
            "source_freq": 0.05,
            "courant": 0.5,
            "gather": False,
            "overlap": True,
        },
        verify_overrides={"nx": 8, "ny": 8, "nz": 8, "steps": 2},
    )
)
register(
    AppSpec(
        name="smog",
        archetype="mesh-spectral",
        description="airshed photochemical smog model (fused transport/chemistry)",
        runner=_run_smog,
        defaults={
            "nprocs": 4,
            "nx": 24,
            "ny": 24,
            "steps": 6,
            "dt": 2e-3,
            "diffusion": 5e-3,
            "chem_substeps": 4,
            "gather": False,
        },
        verify_overrides={"nx": 12, "ny": 12, "steps": 3},
    )
)
register(
    AppSpec(
        name="spectralflow",
        archetype="mesh-spectral",
        description="axisymmetric spectral flow (FFT + tridiagonal solves + hoisted stencils)",
        runner=_run_spectralflow,
        defaults={
            "nprocs": 4,
            "nr": 32,
            "nz": 32,
            "steps": 4,
            "dt": 1e-3,
            "nu": 1e-3,
            "gather": False,
        },
        verify_overrides={"nr": 16, "nz": 16, "steps": 2},
    )
)
register(
    AppSpec(
        name="fft2d",
        archetype="mesh-spectral",
        description="distributed 2-D FFT (spectral; all-to-all transposes)",
        runner=_run_fft2d,
        defaults={"nprocs": 4, "rows": 64, "cols": 64, "repeats": 2, "seed": 0},
        verify_overrides={"rows": 16, "cols": 16, "repeats": 1},
    )
)
register(
    AppSpec(
        name="imagepipe",
        archetype="pipeline-farm",
        description="image pipeline with a farmed blur stage",
        runner=_run_imagepipe,
        defaults={
            "width": 2,
            "window": 2,
            "items": 6,
            "rows": 8,
            "cols": 8,
            "seed": 3,
        },
    )
)
register(
    AppSpec(
        name="knapfarm",
        archetype="pipeline-farm",
        description="knapsack-instance stream through a branch-and-bound farm",
        runner=_run_knapfarm,
        defaults={
            "workers": 2,
            "window": 2,
            "instances": 4,
            "nitems": 10,
            "seed": 7,
        },
    )
)
