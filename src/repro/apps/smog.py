"""Airshed photochemical smog model (paper §4.5.4).

The paper's CIT airshed code models smog in the Los Angeles basin and is
"conceptually based on the mesh-spectral archetype".  We implement the
same computational shape: an operator-split advection–diffusion–reaction
system for three species (NO, NO2, O3) over a 2-D basin grid with a
diurnally varying photolysis rate and spatially localised emissions.

Chemistry: the basic NOx photochemical cycle

    NO2 + hv -> NO + O3        (rate j, diurnal)
    NO + O3  -> NO2            (rate k)

integrated pointwise with sub-stepped explicit Euler; transport: upwind
advection in a prescribed sea-breeze wind field plus central diffusion,
a stencil grid operation with boundary exchange.  Monitoring reductions
(domain-max ozone) exercise the archetype's global variables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.meshspectral import MeshContext, MeshProgram
from repro.comm.reductions import MAX, SUM
from repro.kernels import INC, READ, RW, WRITE, Arg, Kernel, RegionKernel, StencilView
from repro.machines.model import MachineModel

#: flops charged per cell per transport step per species
TRANSPORT_FLOPS = 20.0
#: flops charged per cell per chemistry sub-step
CHEMISTRY_FLOPS = 12.0

#: NO + O3 -> NO2 rate constant (normalised units)
K_NO_O3 = 0.4
#: peak NO2 photolysis rate (normalised units)
J_PEAK = 0.3


@dataclass
class SmogResult:
    """End-of-run state."""

    steps: int
    #: domain-maximum ozone concentration (identical on all ranks)
    peak_ozone: float
    #: total ozone burden (identical on all ranks)
    total_ozone: float
    #: final ozone field on rank 0 (``None`` elsewhere)
    ozone: np.ndarray | None
    #: all final species fields on rank 0 (populated when requested)
    fields: dict[str, np.ndarray] | None = None


def sea_breeze_wind(i: np.ndarray, j: np.ndarray, nx: int, ny: int, t: float):
    """Prescribed wind: onshore flow that veers over the day.

    Returns (u, v) broadcast over the given index arrays; the direction
    rotates slowly with *t* to mimic the diurnal sea-breeze cycle.
    """
    shape = np.broadcast(i, j).shape
    x = np.broadcast_to(i, shape) / nx
    y = np.broadcast_to(j, shape) / ny
    phase = 2.0 * np.pi * t
    u = 0.6 + 0.2 * np.sin(phase) + 0.1 * np.sin(2 * np.pi * y)
    v = 0.3 * np.cos(phase) + 0.1 * np.sin(2 * np.pi * x)
    return u, v


def emission_field(i: np.ndarray, j: np.ndarray, nx: int, ny: int) -> np.ndarray:
    """NO emission sources: two Gaussian urban hot spots."""
    shape = np.broadcast(i, j).shape
    x = np.broadcast_to(i, shape) / nx
    y = np.broadcast_to(j, shape) / ny
    city1 = np.exp(-((x - 0.3) ** 2 + (y - 0.4) ** 2) / 0.01)
    city2 = np.exp(-((x - 0.6) ** 2 + (y - 0.6) ** 2) / 0.02)
    return 2.0 * city1 + 1.0 * city2


def photolysis_rate(t: float) -> float:
    """Diurnal NO2 photolysis rate: zero at night, peaking at midday.

    *t* is the fraction of the day elapsed, starting at midnight and
    wrapping every 1.0; the sun is up between t = 0.25 (6 am) and
    t = 0.75 (6 pm)."""
    daylight = np.sin(2.0 * np.pi * ((t % 1.0) - 0.25))
    return float(J_PEAK * max(daylight, 0.0) ** 2)


def smog_program(
    mesh: MeshContext,
    nx: int,
    ny: int,
    steps: int,
    dt: float = 2e-3,
    diffusion: float = 5e-3,
    chem_substeps: int = 4,
    gather: bool = True,
    gather_all_species: bool = False,
) -> SmogResult:
    """Per-process body of the airshed model.

    Each step: transport every species (ghost exchange + upwind stencil),
    inject emissions, then integrate the chemistry pointwise.  The peak
    ozone is tracked with max-reductions (copy-consistent global).
    """
    dx, dy = 1.0 / nx, 1.0 / ny
    species = {
        name: mesh.grid((nx, ny), ghost=1) for name in ("no", "no2", "o3")
    }
    new = {name: grid.like() for name, grid in species.items()}
    ii, jj = species["no"].coord_arrays()
    emis = emission_field(ii, jj, nx, ny)
    # Clean background: a little NO2, trace ozone.
    species["no2"].interior[...] = 0.1
    species["o3"].interior[...] = 0.05

    peak_ozone = mesh.global_var(0.0)

    def copy_field(dst: np.ndarray, src: np.ndarray) -> None:
        dst[...] = src

    def emissions_body(region: tuple[slice, ...]) -> None:
        species["no"].interior[region] += dt * emis[region]

    t = 0.0
    for _ in range(steps):
        u, v = sea_breeze_wind(ii, jj, nx, ny, t)
        j_rate = photolysis_rate(t)
        h = dt / chem_substeps if chem_substeps else 0.0

        def chemistry(no, no2, o3) -> None:
            for _ in range(chem_substeps):
                r1 = j_rate * no2  # NO2 photolysis  # noqa: B023
                r2 = K_NO_O3 * no * o3  # titration
                no += h * (r1 - r2)  # noqa: B023
                no2 += h * (r2 - r1)  # noqa: B023
                o3 += h * (r1 - r2)  # noqa: B023
                np.clip(no, 0.0, None, out=no)
                np.clip(no2, 0.0, None, out=no2)
                np.clip(o3, 0.0, None, out=o3)

        # One declared step: the kernel layer packs the three species
        # ghost refreshes into one message per neighbour per direction,
        # fuses the three transports into one tiled walk, and fuses the
        # copy-back/emissions/chemistry chain (all pointwise over the
        # same region) so each row block stays cache-resident across the
        # whole chain.
        with mesh.fuse():
            # --- transport: upwind advection + diffusion, per species --
            for name, grid in species.items():
                mesh.parloop(
                    RegionKernel(
                        _transport_update(grid, new[name], u, v, dx, dy, dt, diffusion),
                        name=f"transport:{name}",
                    ),
                    Arg(new[name], WRITE),
                    # open basin boundary: edge ghosts copy the rim value
                    Arg(grid, READ, halo=1, edges="copy"),
                    margin=0,
                    flops_per_point=TRANSPORT_FLOPS,
                    label=f"transport:{name}",
                )
            for name in species:
                mesh.parloop(
                    copy_field,
                    Arg(species[name], WRITE),
                    Arg(new[name], READ),
                    label=f"copy:{name}",
                )

            # --- emissions -------------------------------------------
            mesh.parloop(
                RegionKernel(emissions_body, name="emissions"),
                Arg(species["no"], INC),
                flops_per_point=2.0,
                label="emissions",
            )

            # --- chemistry: pointwise NOx cycle, sub-stepped ----------
            mesh.parloop(
                Kernel(chemistry, name="chemistry"),
                Arg(species["no"], RW),
                Arg(species["no2"], RW),
                Arg(species["o3"], RW),
                flops_per_point=CHEMISTRY_FLOPS * chem_substeps,
                label="chemistry",
            )

        o3 = species["o3"].interior
        local_max = float(np.max(o3)) if o3.size else 0.0
        current = mesh.reduce(local_max, MAX)
        peak_ozone.assign(max(peak_ozone.value, current))
        t += dt

    o3_grid = species["o3"]
    local_sum = float(np.sum(o3_grid.interior)) if o3_grid.interior.size else 0.0
    total = mesh.reduce(local_sum, SUM)
    o3_full = o3_grid.gather(root=0) if gather else None
    fields = None
    if gather_all_species:
        gathered = {name: grid.gather(root=0) for name, grid in species.items()}
        fields = gathered if mesh.comm.rank == 0 else None
    return SmogResult(
        steps=steps,
        peak_ozone=float(peak_ozone.value),
        total_ozone=float(total),
        ozone=o3_full if mesh.comm.rank == 0 else None,
        fields=fields,
    )


def _transport_update(
    qgrid, ogrid, u, v, dx: float, dy: float, dt: float, kdiff: float
):
    """Upwind advection in wind (u, v) plus central diffusion.

    A region kernel (rather than a views kernel) because the wind
    arrays are plain full-interior fields the body must slice to the
    region itself."""

    def update(region: tuple[slice, ...]) -> None:
        q = StencilView(qgrid, region)
        uu = u[region]
        vv = v[region]
        adv_x = np.where(
            uu > 0,
            uu * (q[0, 0] - q[-1, 0]) / dx,
            uu * (q[1, 0] - q[0, 0]) / dx,
        )
        adv_y = np.where(
            vv > 0,
            vv * (q[0, 0] - q[0, -1]) / dy,
            vv * (q[0, 1] - q[0, 0]) / dy,
        )
        lap = (q[1, 0] - 2 * q[0, 0] + q[-1, 0]) / dx**2 + (
            q[0, 1] - 2 * q[0, 0] + q[0, -1]
        ) / dy**2
        ogrid.interior[region] = q[0, 0] - dt * (adv_x + adv_y) + dt * kdiff * lap

    return update


def smog_archetype() -> MeshProgram:
    """Archetype driver for the airshed model."""
    return MeshProgram(smog_program, app_name="smog")


def sequential_smog_time(
    nx: int, ny: int, steps: int, machine: MachineModel, chem_substeps: int = 4
) -> float:
    """Virtual time of the sequential baseline."""
    per_step = (
        3 * TRANSPORT_FLOPS + CHEMISTRY_FLOPS * chem_substeps + 2.0
    ) * nx * ny
    return machine.compute_time(
        per_step * steps, working_set_bytes=8.0 * 6 * nx * ny
    )
