"""0/1 knapsack via the branch-and-bound archetype.

The concrete application for the nondeterministic archetype of paper §6:
choose a subset of items maximising value within a weight capacity.
Branching fixes one item in/out per tree level (in decreasing
value-density order); the bound is the classic fractional-relaxation
(Dantzig) bound, which is admissible.  Internally the search minimises
``-value``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.core.branchbound import BnBProblem, BranchAndBound

#: analytic work charged per branch / per bound evaluation
BRANCH_FLOPS = 20.0
BOUND_FLOPS = 50.0


@dataclass(frozen=True)
class KnapsackInstance:
    """An immutable 0/1 knapsack instance (items pre-sorted by density)."""

    values: tuple[float, ...]
    weights: tuple[float, ...]
    capacity: float

    @classmethod
    def create(cls, values, weights, capacity) -> "KnapsackInstance":
        values = tuple(float(v) for v in values)
        weights = tuple(float(w) for w in weights)
        if len(values) != len(weights):
            raise ReproError("values and weights must have equal length")
        if any(v < 0 for v in values) or any(w <= 0 for w in weights):
            raise ReproError("values must be >= 0 and weights > 0")
        if capacity < 0:
            raise ReproError("capacity must be >= 0")
        order = sorted(
            range(len(values)), key=lambda i: values[i] / weights[i], reverse=True
        )
        return cls(
            values=tuple(values[i] for i in order),
            weights=tuple(weights[i] for i in order),
            capacity=float(capacity),
        )

    @property
    def nitems(self) -> int:
        return len(self.values)


#: a partial solution: (next item index, remaining capacity, value so far,
#: chosen item indices)
Node = tuple[int, float, float, tuple[int, ...]]


def fractional_bound(inst: KnapsackInstance, node: Node) -> float:
    """Dantzig bound: greedily fill remaining capacity, splitting the
    first item that does not fit.  Returned as a (negated) lower bound
    for the minimisation framing."""
    idx, room, value, _ = node
    total = value
    for i in range(idx, inst.nitems):
        if inst.weights[i] <= room:
            room -= inst.weights[i]
            total += inst.values[i]
        else:
            total += inst.values[i] * (room / inst.weights[i])
            break
    return -total


def knapsack_problem(
    inst: KnapsackInstance,
    bound_flops: float = BOUND_FLOPS,
    bound_slack: float = 0.0,
) -> BnBProblem:
    """Wrap an instance in the archetype's callback record.

    ``bound_flops`` is the analytic cost charged per bound evaluation.
    The default models the cheap Dantzig bound; pass something like
    ``2e5`` to model an LP-strength bound.

    ``bound_slack`` optimistically loosens the bound by the given
    fraction (still admissible — it only moves the bound further from
    the optimum).  A loose bound widens the live frontier, which is the
    regime where parallel branch and bound genuinely pays off; the tight
    Dantzig bound makes this problem's best-first search nearly a chain.
    """

    def root() -> Node:
        return (0, inst.capacity, 0.0, ())

    def is_complete(node: Node) -> bool:
        return node[0] >= inst.nitems

    def branch(node: Node) -> list[Node]:
        idx, room, value, chosen = node
        children: list[Node] = [(idx + 1, room, value, chosen)]  # skip item
        if inst.weights[idx] <= room:
            children.append(
                (idx + 1, room - inst.weights[idx], value + inst.values[idx], chosen + (idx,))
            )
        return children

    factor = 1.0 + bound_slack
    return BnBProblem(
        root=root,
        branch=branch,
        bound=lambda node: fractional_bound(inst, node) * factor,
        is_complete=is_complete,
        value=lambda node: -node[2],
        branch_cost=BRANCH_FLOPS,
        bound_cost=bound_flops,
    )


def knapsack_bnb(
    inst: KnapsackInstance,
    chunk: int = 16,
    bound_flops: float = BOUND_FLOPS,
    bound_slack: float = 0.0,
) -> BranchAndBound:
    """The branch-and-bound archetype instance for *inst*.

    ``run(P).values[r]`` is a :class:`~repro.core.branchbound.BnBResult`
    whose ``-value`` is the optimal knapsack value; the chosen item
    indices (in density order) are ``solution[3]``.
    """
    return BranchAndBound(
        knapsack_problem(inst, bound_flops=bound_flops, bound_slack=bound_slack),
        chunk=chunk,
    )


def dp_reference(inst: KnapsackInstance, resolution: int = 1) -> float:
    """Exact dynamic-programming reference (integer weights required when
    ``resolution == 1``; fractional weights are scaled by *resolution*)."""
    scale = resolution
    weights = [int(round(w * scale)) for w in inst.weights]
    cap = int(round(inst.capacity * scale))
    best = np.zeros(cap + 1)
    for value, weight in zip(inst.values, weights):
        if weight <= cap:
            best[weight:] = np.maximum(best[weight:], best[:-weight or None][: cap + 1 - weight] + value)
    return float(best[-1])


def random_instance(
    nitems: int, seed: int = 0, capacity_fraction: float = 0.4
) -> KnapsackInstance:
    """A reproducible random instance with integer weights."""
    rng = np.random.default_rng(seed)
    weights = rng.integers(1, 50, size=nitems)
    values = weights * rng.uniform(0.8, 1.2, size=nitems) + rng.uniform(0, 5, size=nitems)
    capacity = float(int(weights.sum() * capacity_fraction))
    return KnapsackInstance.create(values.round(3), weights, capacity)
