"""Travelling salesman on the branch-and-bound archetype.

A second application of the paper's §6 nondeterministic archetype: find
the cheapest tour visiting every city once and returning home.  Nodes
are partial paths from city 0; branching appends an unvisited city; the
admissible bound adds, for every city not yet departed, its cheapest
outgoing edge (each remaining leg must cost at least that much).
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.errors import ReproError
from repro.core.branchbound import BnBProblem, BranchAndBound

#: analytic work charged per branch / per bound evaluation
BRANCH_FLOPS = 30.0
BOUND_FLOPS = 80.0

#: a partial tour: (cost so far, path of visited city indices)
Node = tuple[float, tuple[int, ...]]


def validate_distances(dist: np.ndarray) -> np.ndarray:
    """Check and normalise a distance matrix (square, non-negative)."""
    d = np.asarray(dist, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ReproError(f"distance matrix must be square, got {d.shape}")
    if d.shape[0] < 2:
        raise ReproError("TSP needs at least 2 cities")
    if np.any(d < 0):
        raise ReproError("distances must be non-negative")
    return d


def tour_cost(dist: np.ndarray, path: tuple[int, ...]) -> float:
    """Cost of a complete closed tour given as a city order."""
    total = 0.0
    for a, b in zip(path, path[1:]):
        total += dist[a, b]
    return total + dist[path[-1], path[0]]


def tsp_problem(dist: np.ndarray) -> BnBProblem:
    """Wrap a distance matrix in the archetype's callback record."""
    d = validate_distances(dist)
    n = d.shape[0]
    # Cheapest outgoing edge per city (self-loops excluded).
    masked = d + np.where(np.eye(n, dtype=bool), math.inf, 0.0)
    min_out = masked.min(axis=1)

    def root() -> Node:
        return (0.0, (0,))

    def is_complete(node: Node) -> bool:
        return len(node[1]) == n + 1  # closed tour (ends back at 0)

    def branch(node: Node) -> list[Node]:
        cost, path = node
        if len(path) == n:  # close the tour
            return [(cost + d[path[-1], 0], path + (0,))]
        current = path[-1]
        return [
            (cost + d[current, city], path + (city,))
            for city in range(n)
            if city not in path
        ]

    def bound(node: Node) -> float:
        cost, path = node
        # Every city we still have to leave (the current city plus all
        # unvisited ones) contributes at least its cheapest outgoing edge.
        remaining = [c for c in range(n) if c not in path] + [path[-1]]
        if len(path) == n + 1:
            return cost
        return cost + float(sum(min_out[c] for c in remaining))

    return BnBProblem(
        root=root,
        branch=branch,
        bound=bound,
        is_complete=is_complete,
        value=lambda node: node[0],
        branch_cost=BRANCH_FLOPS,
        bound_cost=BOUND_FLOPS,
    )


def tsp_bnb(dist: np.ndarray, chunk: int = 32) -> BranchAndBound:
    """The branch-and-bound archetype instance for a distance matrix.

    ``run(P).values[r].solution`` is an optimal closed tour starting and
    ending at city 0; ``.value`` is its cost.
    """
    return BranchAndBound(tsp_problem(dist), chunk=chunk)


def brute_force_tour(dist: np.ndarray) -> tuple[float, tuple[int, ...]]:
    """Exact reference by enumeration (use only for small instances)."""
    d = validate_distances(dist)
    n = d.shape[0]
    if n > 10:
        raise ReproError("brute force limited to 10 cities")
    best_cost, best_path = math.inf, ()
    for perm in itertools.permutations(range(1, n)):
        path = (0, *perm)
        cost = tour_cost(d, path)
        if cost < best_cost:
            best_cost, best_path = cost, path + (0,)
    return best_cost, best_path


def random_cities(n: int, seed: int = 0) -> np.ndarray:
    """Euclidean distance matrix for *n* random points in the unit square."""
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 1, size=(n, 2))
    return np.hypot(
        pts[:, None, 0] - pts[None, :, 0], pts[:, None, 1] - pts[None, :, 1]
    )
