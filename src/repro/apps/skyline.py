"""The skyline problem (paper §2.5.1).

Input: a collection of rectangular buildings ``(left, height, right)``.
Output: the *skyline* — the piecewise-constant upper contour, represented
as an ``(k, 2)`` array of ``(x, height)`` key points, each meaning "from
this x the height is h", strictly increasing in x, ending with height 0.

The sequential algorithm is divide and conquer with a sweep merge; the
one-deep version follows the paper's recipe exactly: degenerate split
(buildings already distributed), local solve with the sequential
algorithm, then a merge phase that samples the x-distribution of local
skyline points, computes vertical cut lines, slices every local skyline
into N adjacent pieces, redistributes, and merges each region locally.
The final skyline is the concatenation of the per-region results.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.onedeep import OneDeepDC, PhaseSpec, SplitterStrategy
from repro.util.sampling import regular_sample, splitters_from_samples

#: work charged per skyline point swept during a merge
SWEEP_FLOPS_PER_POINT = 8.0
#: local x-coordinate samples per rank for computing cut lines
OVERSAMPLE = 32


def building_skyline(left: float, height: float, right: float) -> np.ndarray:
    """Skyline of a single building (the sequential base case)."""
    if right <= left:
        raise ValueError(f"building has non-positive width: {left}..{right}")
    if height < 0:
        raise ValueError(f"building has negative height {height}")
    return np.array([[left, height], [right, 0.0]])


def height_at(skyline: np.ndarray, x: np.ndarray | float) -> np.ndarray | float:
    """Height of *skyline* at coordinate(s) *x* (0 before the first point)."""
    sky = np.asarray(skyline)
    if sky.size == 0:
        return np.zeros_like(np.asarray(x, dtype=float))
    idx = np.searchsorted(sky[:, 0], x, side="right") - 1
    heights = np.concatenate([[0.0], sky[:, 1]])
    return heights[np.asarray(idx) + 1]


def _compress(xs: np.ndarray, hs: np.ndarray, keep_leading_zero: bool = False) -> np.ndarray:
    """Drop key points that repeat the previous height.

    A leading zero-height point normally carries no information — except
    in a *region* skyline (a piece of a vertical cut), where it marks the
    region's left edge and the ground level there; ``keep_leading_zero``
    preserves it so region concatenation stays lossless.
    """
    if xs.size == 0:
        return np.empty((0, 2))
    keep = np.empty(xs.size, dtype=bool)
    keep[0] = True
    keep[1:] = hs[1:] != hs[:-1]
    if hs[0] == 0.0 and not keep_leading_zero:
        keep[0] = False
        if xs.size > 1:
            keep[1] = hs[1] != 0.0
    return np.column_stack([xs[keep], hs[keep]])


def merge_two_skylines(
    a: np.ndarray, b: np.ndarray, keep_leading_zero: bool = False
) -> np.ndarray:
    """Sweep merge: the union contour is the pointwise max of the two."""
    a = np.asarray(a).reshape(-1, 2)
    b = np.asarray(b).reshape(-1, 2)
    if a.size == 0:
        return b.copy()
    if b.size == 0:
        return a.copy()
    xs = np.union1d(a[:, 0], b[:, 0])
    hs = np.maximum(height_at(a, xs), height_at(b, xs))
    return _compress(xs, hs, keep_leading_zero=keep_leading_zero)


def merge_skylines(
    pieces: list[np.ndarray], keep_leading_zero: bool = False
) -> np.ndarray:
    """Balanced pairwise merge of many skylines (O(n log k) sweeps)."""
    runs = [np.asarray(p).reshape(-1, 2) for p in pieces]
    runs = [r for r in runs if r.size > 0]
    if not runs:
        return np.empty((0, 2))
    while len(runs) > 1:
        runs = [
            merge_two_skylines(runs[i], runs[i + 1], keep_leading_zero=keep_leading_zero)
            if i + 1 < len(runs)
            else runs[i]
            for i in range(0, len(runs), 2)
        ]
    return runs[0]


def sequential_skyline(buildings: np.ndarray) -> np.ndarray:
    """Sequential divide and conquer: per-building skylines, tree merge."""
    blds = np.asarray(buildings).reshape(-1, 3)
    singles = [building_skyline(l, h, r) for l, h, r in blds]
    return merge_skylines(singles) if singles else np.empty((0, 2))


def skyline_cost(nbuildings: int) -> float:
    """Analytic work of the sequential algorithm on *nbuildings*."""
    if nbuildings <= 0:
        return 0.0
    # Each of ~log2(n) merge levels sweeps ~2n points.
    return SWEEP_FLOPS_PER_POINT * 2.0 * nbuildings * max(1.0, math.log2(nbuildings))


def cut_skyline(skyline: np.ndarray, splitters: np.ndarray) -> list[np.ndarray]:
    """Cut a skyline at vertical lines into ``len(splitters) + 1`` pieces.

    Piece *i* covers ``[splitters[i-1], splitters[i])``.  Each piece gets a
    synthetic leading key point at its left cut carrying the prevailing
    height, so pieces are complete skylines of their region.
    """
    sky = np.asarray(skyline).reshape(-1, 2)
    cuts = np.asarray(splitters, dtype=float)
    pieces: list[np.ndarray] = []
    bounds = [-math.inf, *cuts.tolist(), math.inf]
    for i in range(len(bounds) - 1):
        lo, hi = bounds[i], bounds[i + 1]
        if sky.size == 0:
            pieces.append(np.empty((0, 2)))
            continue
        inside = sky[(sky[:, 0] >= lo) & (sky[:, 0] < hi)]
        if math.isfinite(lo):
            # Every finite-origin piece carries an explicit point at the
            # cut (even at ground level) so regions concatenate lossless.
            h0 = float(height_at(sky, lo))
            if inside.size == 0 or inside[0, 0] > lo:
                inside = np.vstack([[lo, h0], inside.reshape(-1, 2)])
        pieces.append(_compress(inside[:, 0], inside[:, 1], keep_leading_zero=True))
    return pieces


def one_deep_skyline(
    strategy: SplitterStrategy | str = SplitterStrategy.REPLICATED,
    oversample: int = OVERSAMPLE,
) -> OneDeepDC:
    """The one-deep skyline archetype instance (paper §2.5.1).

    After ``run(P, buildings)``, rank *i*'s return value is the skyline of
    the *i*-th x-region; :func:`merge_skylines` over the per-rank values
    (or plain concatenation followed by compression) gives the full
    skyline.
    """
    merge = PhaseSpec(
        # Sample the x-distribution of local skyline points (the paper's
        # "leftmost and rightmost points" generalised to quantiles so
        # regions get approximately equal point counts).
        sample=lambda sky: regular_sample(np.asarray(sky).reshape(-1, 2)[:, 0], oversample),
        params=lambda samples, n: splitters_from_samples(
            np.concatenate([np.asarray(s) for s in samples]), n
        ),
        partition=lambda splitters, sky, n: (
            cut_skyline(sky, splitters)
            + [np.empty((0, 2))] * (n - 1 - len(np.atleast_1d(splitters)))
        ),
        combine=lambda pieces: merge_skylines(pieces, keep_leading_zero=True),
        sample_cost=lambda sky: float(oversample),
        partition_cost=lambda sky: 2.0 * np.asarray(sky).size,
        combine_cost=lambda combined: SWEEP_FLOPS_PER_POINT
        * np.asarray(combined).reshape(-1, 2).shape[0]
        * 4.0,
    )
    return OneDeepDC(
        solve=sequential_skyline,
        solve_cost=lambda blds: skyline_cost(np.asarray(blds).reshape(-1, 3).shape[0]),
        merge=merge,
        strategy=strategy,
    )


def concat_region_skylines(pieces: list[np.ndarray]) -> np.ndarray:
    """Assemble the global skyline from per-region results."""
    stacked = [np.asarray(p).reshape(-1, 2) for p in pieces if np.asarray(p).size]
    if not stacked:
        return np.empty((0, 2))
    all_points = np.vstack(stacked)
    return _compress(all_points[:, 0], all_points[:, 1])
