"""repro — parallel program archetypes on a simulated message-passing multicomputer.

A reproduction of Massingill & Chandy, *Parallel Program Archetypes*
(IPPS 1999).  The package provides:

- :mod:`repro.runtime` — an in-process SPMD virtual machine (one thread per
  rank, deterministic scheduling, per-rank virtual clocks);
- :mod:`repro.machines` — calibrated performance models of the paper's
  testbeds (Intel Delta, IBM SP, ...);
- :mod:`repro.comm` — an MPI-like communication library plus the
  archetype-specific operations (redistribution, boundary exchange,
  reductions);
- :mod:`repro.core` — the archetype abstractions themselves: one-deep
  divide and conquer and mesh-spectral;
- :mod:`repro.apps` — the paper's application suite (sorting, skyline,
  FFT, Poisson, CFD, FDTD, spectral flow, smog model);
- :mod:`repro.bench` — the experiment harness that regenerates the paper's
  figures;
- :mod:`repro.verify` — schedule-space verification: seeded schedule
  fuzzing, a nondeterminism/deadlock oracle, wildcard-race detection,
  and fault injection (see ``docs/verification.md``).

Quickstart::

    import numpy as np
    from repro import INTEL_DELTA
    from repro.apps.sorting import one_deep_mergesort

    data = np.random.default_rng(0).integers(0, 10**6, size=100_000)
    result = one_deep_mergesort().run(8, data, machine=INTEL_DELTA)
    assert np.array_equal(np.concatenate(result.values), np.sort(data))
"""

from repro._version import __version__
from repro.errors import (
    ArchetypeError,
    CommError,
    DeadlockError,
    DistributionError,
    InjectedFaultError,
    RankFailedError,
    ReproError,
)
from repro.runtime.spmd import RunResult, spmd_run
from repro.machines.catalog import (
    CRAY_T3D,
    ETHERNET_SUNS,
    IBM_SP,
    IDEAL,
    INTEL_DELTA,
    INTEL_PARAGON,
    get_machine,
)

__all__ = [
    "__version__",
    "ReproError",
    "CommError",
    "DeadlockError",
    "DistributionError",
    "InjectedFaultError",
    "RankFailedError",
    "ArchetypeError",
    "spmd_run",
    "RunResult",
    "IDEAL",
    "INTEL_DELTA",
    "INTEL_PARAGON",
    "IBM_SP",
    "CRAY_T3D",
    "ETHERNET_SUNS",
    "get_machine",
]
