"""Optional JIT of expression kernels (``REPRO_KERNEL_JIT``).

An :class:`ExprKernel` declares its body as a single elementwise
expression string over named bindings instead of an opaque Python
callable.  That buys two things: the runtime can *compile* the body
(numexpr evaluates the whole expression in one cache-blocked C loop;
numba compiles a fused ufunc), and the expression is self-describing
for docs and traces.

Neither numexpr nor numba is a dependency — when the switch is on but
no engine imports, execution falls back to the pure-numpy evaluator and
counts a ``core.kernels.jit_fallbacks``.  JIT engines may reassociate
floating-point operations, so JIT output is *not* covered by the
fusion A/B bitwise gate (which compares ``REPRO_KERNEL_FUSION`` on/off
with the JIT off); it is an opt-in speed lever, like ``-ffast-math``.

Switch values: ``0``/``off`` (default) numpy evaluator; ``1``/``auto``
prefer numexpr, then numba, then numpy; ``numexpr``/``numba`` demand
one engine (fall back with a counter if missing).
"""

from __future__ import annotations

import contextlib
import os
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.errors import ArchetypeError
from repro.kernels.ir import Kernel, StencilView
from repro.obs.metrics import counter_handle

_JIT_ENV = "REPRO_KERNEL_JIT"
_OFF = ("", "0", "false", "off")

_mode: str = os.environ.get(_JIT_ENV, "0").lower()

_JIT_FALLBACKS = counter_handle(
    "core.kernels.jit_fallbacks",
    help="expression kernels evaluated by numpy because the requested JIT engine is unavailable",
)
_JIT_EVALS = counter_handle(
    "core.kernels.jit_evals", help="expression-kernel region evaluations via a JIT engine"
)


def jit_mode() -> str:
    """The active JIT mode string (``off``, ``auto``, ``numexpr``, ``numba``)."""
    if _mode in _OFF:
        return "off"
    if _mode in ("1", "auto", "on", "true"):
        return "auto"
    return _mode


def set_jit(mode: str) -> str:
    """Set the JIT mode; returns the previous one.  Also mirrored into
    the environment so freshly spawned backend workers agree."""
    global _mode
    previous = _mode
    _mode = str(mode).lower()
    os.environ[_JIT_ENV] = str(mode)
    return previous


@contextlib.contextmanager
def jit_forced(mode: str) -> Iterator[None]:
    """Force a JIT mode for the duration of the block."""
    previous = set_jit(mode)
    try:
        yield
    finally:
        set_jit(previous)


def _engine():
    """Resolve the active JIT engine: ``("numexpr", module)``,
    ``("numba", module)``, or ``None`` (numpy evaluator)."""
    mode = jit_mode()
    if mode == "off":
        return None
    want_numexpr = mode in ("auto", "numexpr")
    want_numba = mode in ("auto", "numba")
    if want_numexpr:
        try:
            import numexpr  # type: ignore

            return ("numexpr", numexpr)
        except ImportError:
            pass
    if want_numba:
        try:
            import numba  # type: ignore

            return ("numba", numba)
        except ImportError:
            pass
    _JIT_FALLBACKS.inc()
    return None


@dataclass(frozen=True)
class Ref:
    """A binding to one loop argument: *index* into the arg list, read
    at *offset* (a stencil shift; ``None`` means the aligned view)."""

    index: int
    offset: tuple[int, ...] | None = None


class ExprKernel(Kernel):
    """A kernel body given as one elementwise expression string.

    ``bindings`` maps each free name of *expr* to a :class:`Ref` (a view
    of one loop argument, optionally stencil-shifted) or a plain scalar
    constant.  The result is assigned into argument 0's view.  Example —
    the Jacobi sweep::

        ExprKernel(
            "0.25 * (un + us + uw + ue - h2 * f)",
            {"un": Ref(1, (-1, 0)), "us": Ref(1, (1, 0)),
             "uw": Ref(1, (0, -1)), "ue": Ref(1, (0, 1)),
             "f": Ref(2), "h2": h2},
            name="jacobi",
        )
    """

    __slots__ = ("expr", "bindings", "_code", "_numba_fn")

    def __init__(self, expr: str, bindings: dict[str, Ref | float], name: str = "expr"):
        super().__init__(self._numpy_eval, name=name)
        self.expr = expr
        self.bindings = dict(bindings)
        self._code = compile(expr, f"<kernel {name}>", "eval")
        self._numba_fn = None

    def _namespace(self, views: list) -> dict[str, object]:
        ns: dict[str, object] = {}
        for name, binding in self.bindings.items():
            if isinstance(binding, Ref):
                view = views[binding.index]
                if isinstance(view, StencilView):
                    ns[name] = view[binding.offset] if binding.offset else view.center
                elif binding.offset and any(binding.offset):
                    raise ArchetypeError(
                        f"binding {name!r} has offset {binding.offset} but its "
                        "argument is pointwise (declare a halo on the READ arg)"
                    )
                else:
                    ns[name] = view
            else:
                ns[name] = binding
        return ns

    def _numpy_eval(self, out: np.ndarray, *rest) -> None:  # pragma: no cover
        raise ArchetypeError("ExprKernel bodies are executed via execute()")

    def execute(self, views: list) -> None:
        """Evaluate the expression into argument 0's view."""
        out = views[0]
        ns = self._namespace(views)
        engine = _engine()
        if engine is not None and engine[0] == "numexpr":
            engine[1].evaluate(self.expr, local_dict=ns, out=out, casting="same_kind")
            _JIT_EVALS.inc()
            return
        if engine is not None and engine[0] == "numba":
            self._numba_execute(engine[1], out, ns)
            return
        out[...] = eval(self._code, {"__builtins__": {}}, ns)

    def _numba_execute(self, numba, out: np.ndarray, ns: dict) -> None:
        """Compile (once) and run the expression as a numba-jitted
        function of its bindings, in sorted-name order."""
        names = sorted(ns)
        if self._numba_fn is None:
            src = f"def _impl({', '.join(names)}):\n    return {self.expr}\n"
            scope: dict[str, object] = {}
            exec(compile(src, f"<numba kernel {self.name}>", "exec"), {"np": np}, scope)
            self._numba_fn = numba.njit(cache=False)(scope["_impl"])
        out[...] = self._numba_fn(*(ns[n] for n in names))
        _JIT_EVALS.inc()
