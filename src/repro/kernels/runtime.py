"""The par-loop execution engine: queueing, fusion, exchange hoisting.

One :class:`KernelEngine` lives on each rank's ``MeshContext``.  Loops
submitted via :meth:`KernelEngine.submit` execute immediately unless a
``with engine.fuse():`` block is open, in which case they queue and
flush together at block exit — giving the planner a window of adjacent
loops to fuse and a wider scope for exchange dedup.  All state (queue,
validity epoch, fuse depth) is per rank: under the threads backend every
rank shares one process, and any cross-rank sharing here would let one
rank's writes perturb another rank's message pattern.

**The fusion switch changes execution, never the plan.**  Groups,
exchange packs, hoists, deep/shell splits, and the charge sequence are
computed identically whether ``REPRO_KERNEL_FUSION`` is on or off; the
switch only selects how a group's bodies walk the region —

- *fused*: the region is tiled into cache-sized row blocks and every
  loop body runs per tile (loop-interleaved, hot data stays resident);
- *unfused*: each loop body runs once over the whole region, in order.

Because kernel bodies are elementwise, the two walks compute the same
value at every point in the same per-point order, so results are
bitwise-identical — and since neither communication nor charges depend
on the switch, virtual clocks and traces are identical too.  That
invariant is what lets ``tests/test_kernels.py`` gate fusion with the
digest machinery across all four backends.
"""

from __future__ import annotations

import contextlib
import os
from collections.abc import Iterator

from repro.comm.boundary import (
    exchange_ghosts,
    exchange_ghosts_many,
    exchange_ghosts_many_start,
    exchange_ghosts_start,
)
from repro.kernels.ir import (
    ParLoop,
    build_views,
    region_size,
    split_deep_shell,
)
from repro.kernels.jit import ExprKernel
from repro.kernels.plan import LoopGroup, build_groups, plan_exchanges
from repro.obs.metrics import counter_handle

_FUSION_ENV = "REPRO_KERNEL_FUSION"
_TILE_ENV = "REPRO_KERNEL_TILE_BYTES"
#: default fused-tile footprint: the slice of all group arrays walked per
#: tile stays within a typical per-core last-level-cache share.  Smaller
#: tiles fit tighter caches but multiply the per-tile Python dispatch
#: cost; 4 MiB is where the mesh-spectral chains come out ahead.
_DEFAULT_TILE_BYTES = 1 << 22

_fusion_enabled: bool = os.environ.get(_FUSION_ENV, "1").lower() not in (
    "0",
    "false",
    "off",
)

_LOOPS = counter_handle("core.kernels.loops", help="par-loops declared")
_GROUPS = counter_handle("core.kernels.groups", help="fusion groups executed")
_LOOPS_FUSED = counter_handle(
    "core.kernels.loops_fused",
    help="par-loops executed tile-interleaved with at least one neighbour",
)
_EXCHANGES = counter_handle(
    "core.kernels.exchanges", help="ghost exchanges performed (packed counts once)"
)
_EXCHANGES_HOISTED = counter_handle(
    "core.kernels.exchanges_hoisted",
    help="ghost exchanges skipped because the dat's halo was still valid",
)
_DATS_PACKED = counter_handle(
    "core.kernels.dats_packed",
    help="dats whose refresh rode a packed multi-array exchange",
)
_TILES = counter_handle("core.kernels.tiles", help="fused row-block tiles executed")


def fusion_enabled() -> bool:
    """True when fused (tile-interleaved) group execution is active."""
    return _fusion_enabled


def set_fusion(flag: bool) -> bool:
    """Set the fusion flag; returns the previous value.  The flag is
    mirrored into the environment so backend workers spawned later (the
    parallel backend forks one process per rank) derive the same mode."""
    global _fusion_enabled
    previous = _fusion_enabled
    _fusion_enabled = bool(flag)
    os.environ[_FUSION_ENV] = "1" if flag else "0"
    return previous


@contextlib.contextmanager
def fusion_forced(flag: bool) -> Iterator[None]:
    """Force fusion on/off for the duration of the block — the A/B lever
    used by ``python -m repro.bench kernels`` and the identity tests."""
    previous = set_fusion(flag)
    try:
        yield
    finally:
        set_fusion(previous)


def tile_bytes() -> int:
    try:
        return max(1, int(os.environ.get(_TILE_ENV, _DEFAULT_TILE_BYTES)))
    except ValueError:
        return _DEFAULT_TILE_BYTES


def _row_tiles(
    region: tuple[slice, ...], group: LoopGroup
) -> list[tuple[slice, ...]]:
    """Tile *region* along axis 0 into row blocks whose combined
    working set (all distinct group arrays) fits the tile budget."""
    s0 = region[0]
    nrows = s0.stop - s0.start
    row_elems = region_size((slice(0, 1),) + region[1:])
    seen: set[int] = set()
    row_bytes = 0
    for loop in group.loops:
        for a in loop.args:
            if id(a.grid.local) in seen:
                continue
            seen.add(id(a.grid.local))
            row_bytes += row_elems * a.grid.local.itemsize
    rows_per_tile = max(1, tile_bytes() // max(row_bytes, 1))
    if rows_per_tile >= nrows:
        return [region]
    return [
        (slice(lo, min(lo + rows_per_tile, s0.stop)),) + region[1:]
        for lo in range(s0.start, s0.stop, rows_per_tile)
    ]


class KernelEngine:
    """Per-rank par-loop queue, planner driver, and executor."""

    def __init__(self, mesh):
        self.mesh = mesh
        self.queue: list[ParLoop] = []
        self._fuse_depth = 0
        #: validity epoch: bumped whenever a loop with an undeclared
        #: write set runs, invalidating every dat's ghost cleanliness
        #: (a raw write could have hit any grid).
        self.epoch = 0

    # -- submission -----------------------------------------------------------
    def submit(self, loop: ParLoop) -> None:
        """Queue one loop; executes immediately outside a fuse block."""
        _LOOPS.inc()
        self.queue.append(loop)
        if self._fuse_depth == 0:
            self.flush()

    @contextlib.contextmanager
    def fuse(self) -> Iterator[None]:
        """Batch the loops declared inside the block into one flush, so
        adjacent compatible loops fuse and exchanges dedup across them."""
        self._fuse_depth += 1
        try:
            yield
        finally:
            self._fuse_depth -= 1
            if self._fuse_depth == 0:
                self.flush()

    def flush(self) -> None:
        """Plan and execute every queued loop, in declaration order."""
        if not self.queue:
            return
        loops, self.queue = self.queue, []
        for group in build_groups(loops):
            self._run_group(group)

    # -- write tracking for non-kernel operations -----------------------------
    def note_write(self, grid) -> None:
        """Record that *grid* was written outside any kernel (row/col
        ops, redistribution targets, file input): its ghosts are stale."""
        dat = getattr(grid, "_kernel_dat", None)
        if dat is not None:
            dat.clean.clear()

    # -- execution ------------------------------------------------------------
    def _run_group(self, group: LoopGroup) -> None:
        comm = self.mesh.comm
        plan = plan_exchanges(group, self.epoch)
        _GROUPS.inc()
        if plan.hoisted:
            _EXCHANGES_HOISTED.inc(plan.hoisted)
        region = group.region
        use_overlap = group.overlap and not plan.empty
        if use_overlap:
            handles = []
            for a in plan.serial:
                # corner-correct requests never reach the overlap path
                # (legacy shims request corners only in blocking mode),
                # but stay safe if one does: exchange before compute.
                exchange_ghosts(comm, a.local, a.cart, a.ghost, a.periodic)
                _EXCHANGES.inc()
            for pack in plan.packs:
                first = pack[0]
                if len(pack) == 1:
                    handles.append(
                        exchange_ghosts_start(
                            comm, first.local, first.cart, first.ghost, first.periodic
                        )
                    )
                else:
                    handles.append(
                        exchange_ghosts_many_start(
                            comm,
                            [a.local for a in pack],
                            first.cart,
                            first.ghost,
                            first.periodic,
                        )
                    )
                    _DATS_PACKED.inc(len(pack))
                _EXCHANGES.inc()
            for a in plan.fills:
                # physical-edge ghosts have no neighbour; filling them
                # does not race the in-flight slabs.
                a.grid.fill_edge_ghosts(a.edges)
            deep, shells = split_deep_shell(
                region, max(group.halo_max, 1), group.shape
            )
            self._run_phase(group, deep)
            for handle in handles:
                handle.wait()
            for tile in shells:
                self._run_phase(group, tile)
        else:
            for a in plan.serial:
                exchange_ghosts(comm, a.local, a.cart, a.ghost, a.periodic)
                _EXCHANGES.inc()
            for pack in plan.packs:
                first = pack[0]
                if len(pack) == 1:
                    exchange_ghosts(
                        comm, first.local, first.cart, first.ghost, first.periodic
                    )
                else:
                    exchange_ghosts_many(
                        comm,
                        [a.local for a in pack],
                        first.cart,
                        first.ghost,
                        first.periodic,
                    )
                    _DATS_PACKED.inc(len(pack))
                _EXCHANGES.inc()
            for a in plan.fills:
                a.grid.fill_edge_ghosts(a.edges)
            self._run_phase(group, region)
        # Post-state: refreshed dats are clean at this epoch, written
        # dats are dirty (clean marks land first, so a dat both read and
        # written in the group correctly ends dirty).
        for dat, key in plan.performed:
            dat.clean[key] = self.epoch
        for dat in group.writes:
            dat.clean.clear()
        if any(loop.writes_undeclared for loop in group.loops):
            self.epoch += 1

    def _run_phase(self, group: LoopGroup, region: tuple[slice, ...]) -> None:
        """Charge and execute every group loop over one region tile.

        The charge sequence (one charge per loop, declaration order,
        zero-point phases silent) is fixed here and shared by both
        fusion modes — the virtual-clock half of the A/B identity.
        """
        npoints = region_size(region)
        if npoints == 0:
            return
        comm = self.mesh.comm
        working_set = self.mesh.working_set
        for loop in group.loops:
            if loop.flops_per_point:
                comm.charge(
                    loop.flops_per_point * npoints,
                    label=loop.label,
                    working_set_bytes=working_set,
                )
        if fusion_enabled() and len(group.loops) > 1:
            tiles = _row_tiles(region, group)
            for tile in tiles:
                for loop in group.loops:
                    self._run_body(loop, tile)
            _TILES.inc(len(tiles))
            _LOOPS_FUSED.inc(len(group.loops))
        else:
            for loop in group.loops:
                self._run_body(loop, region)

    def _run_body(self, loop: ParLoop, region: tuple[slice, ...]) -> None:
        kernel = loop.kernel
        if kernel.kind == "region":
            kernel.fn(region)
            return
        views = build_views(loop, region)
        if isinstance(kernel, ExprKernel):
            kernel.execute(views)
        else:
            kernel.fn(*views)
