"""The par-loop IR: data descriptors, access modes, kernels, loops.

The mesh-spectral hot path used to be interpret-per-op: every
``stencil_op``/``point_op`` independently walked ghosts, sliced
interiors, and allocated numpy temporaries, so the runtime could never
see across op boundaries.  This module gives programs a way to *declare*
each sweep instead (the PyOP2 Sets/Dats/Kernels move, and the
access-mode vocabulary of Danelutto & Torquati's state-access-pattern
work): a :class:`Dat` wraps a distributed grid field, an :class:`Arg`
binds it to one loop with an access mode (:data:`READ`/:data:`WRITE`/
:data:`RW`/:data:`INC`) and a declared halo depth, and a
:class:`ParLoop` pairs a :class:`Kernel` body with its argument list.
The runtime (:mod:`repro.kernels.runtime`) then fuses adjacent loops
whose access sets compose and hoists ghost exchanges that feed multiple
ops — legality rules live in :mod:`repro.kernels.plan`.

Layering: this module sits below :mod:`repro.core.meshspectral` (which
re-exports :class:`StencilView` and :func:`split_deep_shell` for
backward compatibility) and imports only errors + numpy.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ArchetypeError

if TYPE_CHECKING:  # import cycle guard: core.grid is above us in layering
    from repro.core.grid import DistGrid


class Access(enum.Enum):
    """How one loop argument touches its dat (per point)."""

    READ = "read"
    WRITE = "write"
    RW = "rw"
    INC = "inc"

    @property
    def reads(self) -> bool:
        return self is not Access.WRITE

    @property
    def writes(self) -> bool:
        return self is not Access.READ


READ = Access.READ
WRITE = Access.WRITE
RW = Access.RW
INC = Access.INC


def _normalize_periodic(
    periodic: tuple[bool, ...] | bool, ndim: int
) -> tuple[bool, ...]:
    if isinstance(periodic, bool):
        return (periodic,) * ndim
    return tuple(bool(p) for p in periodic)


class Dat:
    """Data descriptor: a distributed grid field plus kernel bookkeeping.

    One :class:`Dat` exists per grid per rank (use :func:`dat_of`, which
    caches the descriptor on the grid object — never keyed by ``id()``,
    which could be reused after garbage collection).  ``clean`` maps a
    ghost key ``(periodic, edges)`` to the engine epoch at which this
    dat's ghosts were last refreshed with that configuration; the
    planner skips (hoists) an exchange whose key is clean at the current
    epoch.  Any kernel write clears the map; raw (undeclared) writes are
    covered by the engine epoch bump (see
    :class:`repro.kernels.runtime.KernelEngine`).
    """

    __slots__ = ("grid", "clean")

    def __init__(self, grid: DistGrid):
        self.grid = grid
        self.clean: dict[tuple, int] = {}

    # -- access-mode constructors (the declarative app-facing API) -----------
    def read(
        self,
        halo: int = 0,
        periodic: tuple[bool, ...] | bool = False,
        edges: str | None = None,
        exchange: bool = True,
    ) -> Arg:
        return Arg(self, READ, halo=halo, periodic=periodic, edges=edges, exchange=exchange)

    def write(self) -> Arg:
        return Arg(self, WRITE)

    def rw(self) -> Arg:
        return Arg(self, RW)

    def inc(self) -> Arg:
        return Arg(self, INC)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Dat(shape={self.grid.interior.shape}, ghost={self.grid.ghost})"


def dat_of(grid: DistGrid) -> Dat:
    """The (cached) data descriptor for *grid* on this rank."""
    dat = getattr(grid, "_kernel_dat", None)
    if dat is None:
        dat = Dat(grid)
        grid._kernel_dat = dat
    return dat


class Arg:
    """One loop argument: a dat bound to an access mode.

    *halo* is the stencil radius the kernel body reads around each
    point (0 = pointwise).  It drives fusion legality and the
    deep/shell split; the exchange itself always refreshes the grid's
    full ghost width (slab geometry is fixed by the allocation).
    *periodic*/*edges* describe the ghost configuration a halo read
    needs (``edges`` as in :meth:`DistGrid.fill_edge_ghosts`).
    *exchange=False* declares the halo already valid by construction
    (the caller manages ghosts).

    Two internal flags serve the legacy shims: *fresh* forces the
    exchange (and never records cleanliness) because the old APIs made
    no write declarations, so ghost validity cannot be tracked across
    calls; *corners* demands the serialised blocking exchange whose
    corner ghosts are correct (box stencils).
    """

    __slots__ = ("dat", "mode", "halo", "periodic", "edges", "exchange", "fresh", "corners")

    def __init__(
        self,
        dat: Dat | DistGrid,
        mode: Access,
        halo: int = 0,
        periodic: tuple[bool, ...] | bool = False,
        edges: str | None = None,
        exchange: bool = True,
        fresh: bool = False,
        corners: bool = False,
    ):
        if not isinstance(dat, Dat):
            dat = dat_of(dat)
        if halo < 0:
            raise ArchetypeError(f"negative halo {halo}")
        if halo > 0 and mode is not READ:
            raise ArchetypeError(
                "halo reads require mode READ; writes are pointwise "
                "(paper §3.1: outputs disjoint from stencil inputs)"
            )
        if halo > 0 and dat.grid.ghost < max(1, halo):
            raise ArchetypeError(
                f"declared halo {halo} exceeds grid ghost width {dat.grid.ghost}"
            )
        self.dat = dat
        self.mode = mode
        self.halo = halo
        self.periodic = _normalize_periodic(periodic, dat.grid.ndim)
        self.edges = edges
        self.exchange = exchange
        self.fresh = fresh
        self.corners = corners

    @property
    def grid(self) -> DistGrid:
        return self.dat.grid

    # duck-typed exchange-request surface consumed by
    # repro.comm.boundary.dedup_exchange_requests
    @property
    def local(self) -> np.ndarray:
        return self.dat.grid.local

    @property
    def cart(self) -> Any:
        return self.dat.grid.cart

    @property
    def ghost(self) -> int:
        return self.dat.grid.ghost

    @property
    def needs_exchange(self) -> bool:
        """True when this argument asks the planner for a ghost refresh."""
        return self.mode.reads and self.halo > 0 and self.exchange

    @property
    def ghost_key(self) -> tuple:
        """Validity key: two refreshes with equal keys are interchangeable."""
        return (self.periodic, self.edges, self.corners)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Arg({self.mode.name}, halo={self.halo})"


class Kernel:
    """A kernel body called per region as ``fn(*views)``.

    Views follow the argument order: plain aligned interior views for
    halo-0 arguments, :class:`StencilView` for halo reads.  The body
    must be *elementwise* (each output point depends only on the view
    values at that point / its declared halo), which is exactly what
    makes tiled fused execution bitwise-identical to one whole-region
    call.
    """

    __slots__ = ("fn", "name")

    kind = "views"

    def __init__(self, fn: Callable[..., None], name: str = "kernel"):
        self.fn = fn
        self.name = name


class RegionKernel(Kernel):
    """A kernel body called as ``fn(region)`` with interior-coordinate
    slices (the :meth:`MeshContext.overlapped_update` calling
    convention).  Same elementwise/tiling-safety contract as
    :class:`Kernel`; the body slices its own grids."""

    kind = "region"


class ParLoop:
    """One declared parallel loop: kernel + args + iteration region.

    The region is the owned interior of the first argument's grid
    intersected with *margin* cells from the **global** edge (matching
    ``stencil_op``).  Loops are queued by the engine and executed in
    groups; *overlap* is the resolved exchange mode (the context default
    already applied).  *writes_undeclared* marks legacy region kernels
    whose write set is unknown — they fuse with nothing and bump the
    validity epoch.
    """

    __slots__ = (
        "kernel",
        "args",
        "region",
        "flops_per_point",
        "label",
        "overlap",
        "writes_undeclared",
    )

    def __init__(
        self,
        kernel: Kernel,
        args: list[Arg],
        margin: int | tuple[int, ...] = 0,
        flops_per_point: float = 0.0,
        label: str | None = None,
        overlap: bool = False,
        writes_undeclared: bool = False,
    ):
        if not args:
            raise ArchetypeError("a par-loop needs at least one argument")
        anchor = args[0].grid
        for a in args[1:]:
            if a.grid.layout.rects != anchor.layout.rects:
                raise ArchetypeError(
                    "grids in one operation must share a distribution; "
                    "redistribute first"
                )
        # §3.1: an output may never alias a stencil (halo > 0) input.
        writes = [a for a in args if a.mode.writes]
        for a in args:
            if a.halo > 0 and any(w.grid.local is a.grid.local for w in writes):
                raise ArchetypeError(
                    "grid operations reading neighbours require output "
                    "disjoint from inputs (paper §3.1)"
                )
        if kernel.kind == "views":
            for a in args:
                if a.mode is not READ and a.halo > 0:
                    raise ArchetypeError(
                        "non-READ view arguments must be pointwise (halo 0)"
                    )
        self.kernel = kernel
        self.args = args
        self.region = anchor.interior_intersection(margin)
        self.flops_per_point = float(flops_per_point)
        self.label = label or kernel.name
        self.overlap = overlap
        self.writes_undeclared = writes_undeclared

    @property
    def halo_max(self) -> int:
        return max((a.halo for a in self.args), default=0)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.args[0].grid.interior.shape


class StencilView:
    """Shifted-neighbour access for stencil updates.

    Indexing with an offset tuple returns the input array shifted by that
    offset, aligned with the output region: ``u[-1, 0]`` is "the value one
    row up from each updated point".  Offsets beyond the ghost width (or
    the declared halo, when one is given) raise.
    """

    def __init__(
        self, grid: DistGrid, region: tuple[slice, ...], halo: int | None = None
    ):
        self._arr = grid.local
        self._ghost = grid.ghost if halo is None else min(halo, grid.ghost)
        # region is expressed in interior coordinates; shift to ghosted.
        g = grid.ghost
        self._region = tuple(
            slice(s.start + g, s.stop + g) for s in region
        )

    def __getitem__(self, offsets: tuple[int, ...] | int) -> np.ndarray:
        if isinstance(offsets, int):
            offsets = (offsets,)
        if len(offsets) != self._arr.ndim:
            raise ArchetypeError(
                f"stencil offset {offsets} does not match grid rank {self._arr.ndim}"
            )
        if any(abs(o) > self._ghost for o in offsets):
            raise ArchetypeError(
                f"stencil offset {offsets} exceeds ghost width {self._ghost}"
            )
        return self._arr[
            tuple(slice(s.start + o, s.stop + o) for s, o in zip(self._region, offsets))
        ]

    @property
    def center(self) -> np.ndarray:
        """The unshifted view (offset all-zero)."""
        return self._arr[self._region]


def split_deep_shell(
    region: tuple[slice, ...], ghost: int, shape: tuple[int, ...]
) -> tuple[tuple[slice, ...], list[tuple[slice, ...]]]:
    """Split *region* (slices into an owned section of *shape*) for
    compute/communication overlap.

    Returns ``(deep, shells)``: *deep* is the subregion whose cells lie at
    least *ghost* from every owned-section edge — stencil reads of radius
    up to *ghost* from a deep cell never touch a ghost layer, so deep
    cells can be updated while the exchange is in flight; *shells* are
    disjoint tiles covering the rest of the region, updated after the
    exchange completes.  Together they tile *region* exactly, so charging
    per tile sums to the one-region charge.
    """
    deep = []
    for s, n in zip(region, shape):
        lo = min(max(s.start, ghost), s.stop)
        hi = max(min(s.stop, n - ghost), lo)
        deep.append(slice(lo, hi))
    shells: list[tuple[slice, ...]] = []
    for d, (s, ds) in enumerate(zip(region, deep)):
        # Axes before d take the deep band, axis d one of the two shell
        # slabs, axes after d the full region extent: every non-deep cell
        # lands in exactly one tile (indexed by its first non-deep axis).
        prefix = tuple(deep[:d])
        suffix = tuple(region[d + 1 :])
        if s.start < ds.start:
            shells.append(prefix + (slice(s.start, ds.start),) + suffix)
        if ds.stop < s.stop:
            shells.append(prefix + (slice(ds.stop, s.stop),) + suffix)
    return tuple(deep), shells


def region_size(region: tuple[slice, ...]) -> int:
    """Number of points in a region of slices."""
    n = 1
    for s in region:
        n *= max(s.stop - s.start, 0)
    return n


def build_views(loop: ParLoop, region: tuple[slice, ...]) -> list[Any]:
    """Materialise the kernel-body views for one region, in arg order."""
    views: list[Any] = []
    for a in loop.args:
        if a.mode is READ and a.halo > 0:
            views.append(StencilView(a.grid, region, halo=a.halo))
        else:
            views.append(a.grid.interior[region])
    return views
