"""repro.kernels — the declarative par-loop layer.

Programs declare *what* each grid sweep reads and writes (``Dat`` data
descriptors, ``READ``/``WRITE``/``RW``/``INC`` access modes with halo
depths, ``Kernel`` bodies); the runtime fuses adjacent compatible
loops, hoists and packs ghost exchanges, and optionally JITs
expression kernels (``REPRO_KERNEL_JIT``).  ``REPRO_KERNEL_FUSION=0``
switches to loop-by-loop execution that is bitwise- and
virtual-clock-identical.  See ``docs/kernel_layer.md``.
"""

from repro.kernels.ir import (
    INC,
    READ,
    RW,
    WRITE,
    Access,
    Arg,
    Dat,
    Kernel,
    ParLoop,
    RegionKernel,
    StencilView,
    dat_of,
    split_deep_shell,
)
from repro.kernels.jit import ExprKernel, Ref, jit_forced, jit_mode, set_jit
from repro.kernels.plan import LoopGroup, build_groups, can_fuse, plan_exchanges
from repro.kernels.runtime import (
    KernelEngine,
    fusion_enabled,
    fusion_forced,
    set_fusion,
)

__all__ = [
    "Access",
    "READ",
    "WRITE",
    "RW",
    "INC",
    "Arg",
    "Dat",
    "dat_of",
    "Kernel",
    "RegionKernel",
    "ExprKernel",
    "Ref",
    "ParLoop",
    "StencilView",
    "split_deep_shell",
    "LoopGroup",
    "build_groups",
    "can_fuse",
    "plan_exchanges",
    "KernelEngine",
    "fusion_enabled",
    "fusion_forced",
    "set_fusion",
    "jit_mode",
    "set_jit",
    "jit_forced",
]
