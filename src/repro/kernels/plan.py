"""Fusion and exchange planning for par-loops.

Given the queued loops, the planner forms **groups** of adjacent loops
that may legally execute tile-interleaved, and derives each group's
**exchange plan**: which dats need a ghost refresh, which refreshes are
redundant (hoisted — the dat's ghosts are still valid from an earlier
group), and how the remaining refreshes pack into combined messages.

The plan is a pure function of the declared access sets, *not* of the
fusion switch: ``REPRO_KERNEL_FUSION=0`` changes only how group bodies
are walked (loop-by-loop instead of tile-interleaved), never the
grouping, the exchanges, or the charge sequence — that is what makes the
fused path bitwise- and virtual-clock-identical to the unfused one.

Legality (for loops sharing one region and overlap mode), per pair of
an earlier loop A and a candidate B:

- A writes dat d and B reads d with halo > 0 → **break** (B's halo read
  needs a ghost refresh of A's result first; "a WRITE between two READs
  breaks fusion").
- A reads d with halo > 0 and B writes d → **break** (tile-interleaving
  would let B overwrite cells a later tile of A still reads).
- All halo-0 interactions compose: per point, tile-interleaved order
  equals loop order, because kernel bodies are elementwise.

Loops whose write set is undeclared (legacy region kernels) fuse with
nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.boundary import dedup_exchange_requests
from repro.kernels.ir import Arg, Dat, ParLoop


@dataclass
class LoopGroup:
    """Adjacent loops that execute as one fused region walk."""

    loops: list[ParLoop]

    @property
    def region(self) -> tuple[slice, ...]:
        return self.loops[0].region

    @property
    def shape(self) -> tuple[int, ...]:
        return self.loops[0].shape

    @property
    def overlap(self) -> bool:
        return self.loops[0].overlap

    @property
    def halo_max(self) -> int:
        return max(loop.halo_max for loop in self.loops)

    @property
    def writes(self) -> list[Dat]:
        out: list[Dat] = []
        for loop in self.loops:
            for a in loop.args:
                if a.mode.writes and a.dat not in out:
                    out.append(a.dat)
        return out


def can_fuse(group: LoopGroup, loop: ParLoop) -> bool:
    """May *loop* join *group* (tile-interleaved execution stays
    bitwise-identical to loop-by-loop execution)?"""
    head = group.loops[0]
    if loop.writes_undeclared or any(p.writes_undeclared for p in group.loops):
        return False
    if loop.region != head.region or loop.shape != head.shape:
        return False
    if loop.overlap != head.overlap:
        return False
    for prev in group.loops:
        prev_writes = {id(a.dat) for a in prev.args if a.mode.writes}
        prev_halo_reads = {id(a.dat) for a in prev.args if a.mode.reads and a.halo > 0}
        for a in loop.args:
            if a.mode.reads and a.halo > 0 and id(a.dat) in prev_writes:
                return False
            if a.mode.writes and id(a.dat) in prev_halo_reads:
                return False
    return True


def build_groups(loops: list[ParLoop]) -> list[LoopGroup]:
    """Greedy in-order grouping: each loop joins the current group when
    legal, else starts a new one.  Order is preserved — groups never
    reorder loops, so unfused execution is exactly the declared
    sequence."""
    groups: list[LoopGroup] = []
    for loop in loops:
        if groups and can_fuse(groups[-1], loop):
            groups[-1].loops.append(loop)
        else:
            groups.append(LoopGroup([loop]))
    return groups


@dataclass
class ExchangePlan:
    """The ghost refreshes one group performs.

    *packs* are lists of same-geometry args combined into one
    ``exchange_ghosts_many`` (one message per neighbour per direction
    covering every dat); singleton packs use the unpacked variant.
    *serial* args demand the axis-serialised blocking exchange (correct
    corner ghosts).  *fills* are the physical-edge ghost fills to apply
    after the refresh.  *hoisted* counts reads whose ghosts were already
    valid; *performed* lists ``(dat, key)`` pairs to mark clean.
    """

    packs: list[list[Arg]] = field(default_factory=list)
    serial: list[Arg] = field(default_factory=list)
    fills: list[Arg] = field(default_factory=list)
    hoisted: int = 0
    performed: list[tuple[Dat, tuple]] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.packs and not self.serial


def plan_packs(args: list[Arg]) -> list[list[Arg]]:
    """Combine exchange requests into packed-message groups.

    Args pack together when their arrays stack (same local shape, dtype,
    ghost width) and their exchanges coincide (same periodicity, same
    process grid) — :func:`repro.comm.boundary.dedup_exchange_requests`
    holds the geometry rule.  First-seen order is preserved both across
    packs and within one, so the message schedule is deterministic.
    """
    return dedup_exchange_requests(args)


def plan_exchanges(group: LoopGroup, epoch: int) -> ExchangePlan:
    """Derive the group's exchange plan against the current validity
    *epoch* (see :class:`repro.kernels.runtime.KernelEngine`)."""
    plan = ExchangePlan()
    needed: list[Arg] = []
    seen: set[tuple[int, tuple]] = set()
    for loop in group.loops:
        for a in loop.args:
            if not a.needs_exchange:
                continue
            ident = (id(a.dat), a.ghost_key)
            if ident in seen:
                continue  # within-group dedup: one refresh serves all readers
            seen.add(ident)
            if not a.fresh and a.dat.clean.get(a.ghost_key) == epoch:
                plan.hoisted += 1
                continue
            needed.append(a)
            if not a.fresh:
                plan.performed.append((a.dat, a.ghost_key))
            if a.edges is not None:
                plan.fills.append(a)
    plan.serial = [a for a in needed if a.corners]
    plan.packs = plan_packs([a for a in needed if not a.corners])
    return plan
