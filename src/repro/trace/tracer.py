"""Event collection.

A :class:`Tracer` owns one event list per rank.  The deterministic
scheduler runs at most one rank at a time, so appends need no locking
there; the concurrent backend appends only to the calling rank's own list,
which is also safe (list.append is atomic and each list has one writer).
"""

from __future__ import annotations

from repro.trace.events import CommEvent, ComputeEvent, Event, MatchEvent


class Tracer:
    """Collects events for an SPMD run of ``nprocs`` ranks."""

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self.events: list[list[Event]] = [[] for _ in range(nprocs)]

    def record(self, event: Event) -> None:
        self.events[event.rank].append(event)

    # Convenience constructors keep call sites in the runtime short.
    def comm(
        self,
        rank: int,
        kind: str,
        peer: int,
        tag: int,
        nbytes: int,
        start: float,
        end: float,
    ) -> None:
        self.record(
            CommEvent(
                rank=rank,
                start=start,
                end=end,
                kind=kind,
                peer=peer,
                tag=tag,
                nbytes=nbytes,
            )
        )

    def compute(self, rank: int, flops: float, label: str, start: float, end: float) -> None:
        self.record(
            ComputeEvent(rank=rank, start=start, end=end, flops=flops, label=label)
        )

    def match(
        self,
        rank: int,
        clock: float,
        source: int,
        tag: int,
        wildcard_source: bool,
        wildcard_tag: bool,
        candidates: tuple[int, ...],
    ) -> None:
        self.record(
            MatchEvent(
                rank=rank,
                start=clock,
                end=clock,
                source=source,
                tag=tag,
                wildcard_source=wildcard_source,
                wildcard_tag=wildcard_tag,
                candidates=candidates,
            )
        )

    def events_for(self, rank: int) -> list[Event]:
        return self.events[rank]

    def all_events(self) -> list[Event]:
        merged: list[Event] = []
        for per_rank in self.events:
            merged.extend(per_rank)
        merged.sort(key=lambda e: (e.start, e.rank))
        return merged
