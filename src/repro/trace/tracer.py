"""Event collection.

A :class:`Tracer` owns one event list per rank.  The deterministic
scheduler runs at most one rank at a time, so appends need no locking
there; the concurrent backend appends only to the calling rank's own list,
which is also safe (list.append is atomic and each list has one writer).
"""

from __future__ import annotations

from repro.trace.events import CommEvent, ComputeEvent, Event, MatchEvent, RequestEvent


class Tracer:
    """Collects events for an SPMD run of ``nprocs`` ranks."""

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self.events: list[list[Event]] = [[] for _ in range(nprocs)]

    def record(self, event: Event) -> None:
        self.events[event.rank].append(event)

    # Convenience constructors keep call sites in the runtime short.
    def comm(
        self,
        rank: int,
        kind: str,
        peer: int,
        tag: int,
        nbytes: int,
        start: float,
        end: float,
        arrival: float = -1.0,
    ) -> None:
        self.record(
            CommEvent(
                rank=rank,
                start=start,
                end=end,
                kind=kind,
                peer=peer,
                tag=tag,
                nbytes=nbytes,
                arrival=arrival,
            )
        )

    def compute(self, rank: int, flops: float, label: str, start: float, end: float) -> None:
        self.record(
            ComputeEvent(rank=rank, start=start, end=end, flops=flops, label=label)
        )

    def match(
        self,
        rank: int,
        clock: float,
        source: int,
        tag: int,
        wildcard_source: bool,
        wildcard_tag: bool,
        candidates: tuple[int, ...],
        completion: bool = False,
    ) -> None:
        self.record(
            MatchEvent(
                rank=rank,
                start=clock,
                end=clock,
                source=source,
                tag=tag,
                wildcard_source=wildcard_source,
                wildcard_tag=wildcard_tag,
                candidates=candidates,
                completion=completion,
            )
        )

    def request(
        self,
        rank: int,
        clock: float,
        kind: str,
        op: str,
        req_id: int,
        peer: int,
        tag: int,
        nbytes: int,
    ) -> None:
        self.record(
            RequestEvent(
                rank=rank,
                start=clock,
                end=clock,
                kind=kind,
                op=op,
                req_id=req_id,
                peer=peer,
                tag=tag,
                nbytes=nbytes,
            )
        )

    def adopt(self, rank: int, events: list[Event]) -> None:
        """Install *rank*'s event list wholesale.

        Used by the process-parallel backend to merge trace buffers that
        were recorded in a worker process back into the parent's tracer;
        per-rank lists are independent, so adoption is a plain slot
        assignment.
        """
        self.events[rank] = list(events)

    def events_for(self, rank: int) -> list[Event]:
        return self.events[rank]

    def all_events(self) -> list[Event]:
        merged: list[Event] = []
        for per_rank in self.events:
            merged.extend(per_rank)
        merged.sort(key=lambda e: (e.start, e.rank))
        return merged
