"""Event records emitted by the runtime when tracing is enabled."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Event:
    """Base event: something that happened on a rank at a virtual time."""

    rank: int
    #: virtual time at which the event began (seconds)
    start: float
    #: virtual time at which the event completed (seconds)
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CommEvent(Event):
    """A point-to-point communication action.

    ``kind`` is ``"send"`` or ``"recv"``; ``peer`` is the other rank;
    ``nbytes`` the estimated payload size; ``tag`` the message tag.
    For a ``recv``, ``start`` is when the rank began waiting and ``end``
    when the message had been consumed, so ``duration`` includes idle
    (wait) time.
    """

    kind: str = "send"
    peer: int = -1
    tag: int = 0
    nbytes: int = 0


@dataclass(frozen=True)
class MatchEvent(Event):
    """A wildcard-receive match decision (recorded by the fuzzed backend).

    ``source``/``tag`` identify the message actually taken;
    ``wildcard_source``/``wildcard_tag`` say which pattern fields of the
    receive were wildcards; ``candidates`` is the sorted tuple of distinct
    source ranks whose oldest pending message could legally have matched
    at decision time.  ``len(candidates) > 1`` with a wildcard source is a
    *wildcard race*: the program's behaviour may depend on arrival order.
    ``start == end`` (the decision is instantaneous in virtual time).
    """

    source: int = -1
    tag: int = -1
    wildcard_source: bool = False
    wildcard_tag: bool = False
    candidates: tuple[int, ...] = ()


@dataclass(frozen=True)
class ComputeEvent(Event):
    """A charged compute region; ``flops`` is the useful work accounted."""

    flops: float = 0.0
    label: str = ""
