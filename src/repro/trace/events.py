"""Event records emitted by the runtime when tracing is enabled."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Event:
    """Base event: something that happened on a rank at a virtual time."""

    rank: int
    #: virtual time at which the event began (seconds)
    start: float
    #: virtual time at which the event completed (seconds)
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CommEvent(Event):
    """A point-to-point communication action.

    ``kind`` is ``"send"`` or ``"recv"``; ``peer`` is the other rank;
    ``nbytes`` the estimated payload size; ``tag`` the message tag.
    For a ``recv``, ``start`` is when the rank began waiting and ``end``
    when the message had been consumed, so ``duration`` includes idle
    (wait) time.
    """

    kind: str = "send"
    peer: int = -1
    tag: int = 0
    nbytes: int = 0


@dataclass(frozen=True)
class ComputeEvent(Event):
    """A charged compute region; ``flops`` is the useful work accounted."""

    flops: float = 0.0
    label: str = ""
