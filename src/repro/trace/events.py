"""Event records emitted by the runtime when tracing is enabled."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Event:
    """Base event: something that happened on a rank at a virtual time."""

    rank: int
    #: virtual time at which the event began (seconds)
    start: float
    #: virtual time at which the event completed (seconds)
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CommEvent(Event):
    """A point-to-point communication action.

    ``kind`` is ``"send"`` or ``"recv"``; ``peer`` is the other rank;
    ``nbytes`` the estimated payload size; ``tag`` the message tag.
    For a ``recv``, ``start`` is when the rank began waiting and ``end``
    when the message had been consumed, so ``duration`` includes idle
    (wait) time.
    """

    kind: str = "send"
    peer: int = -1
    tag: int = 0
    nbytes: int = 0
    #: virtual arrival time of the message (receiver side), when known.
    #: For a nonblocking send the slice covers only the post overhead, so
    #: ``end`` understates when the wire transfer finished; ``arrival``
    #: carries the true completion for wait/critical-path accounting.
    #: ``-1.0`` means not recorded (pre-request-layer events).
    arrival: float = -1.0


@dataclass(frozen=True)
class MatchEvent(Event):
    """A nondeterministic matching decision (recorded by the fuzzed backend).

    ``source``/``tag`` identify the message actually taken;
    ``wildcard_source``/``wildcard_tag`` say which pattern fields of the
    receive were wildcards; ``candidates`` is the sorted tuple of distinct
    source ranks whose oldest pending message could legally have matched
    at decision time.  ``len(candidates) > 1`` with a wildcard source is a
    *wildcard race*: the program's behaviour may depend on arrival order.
    ``start == end`` (the decision is instantaneous in virtual time).

    ``completion=True`` marks the other flavour of legal nondeterminism:
    a ``waitany``/``waitall`` over several fulfilled nonblocking requests
    picked one completion order among many.  Those are recorded for
    observability but are *not* wildcard races (the pattern fields are
    concrete); :func:`repro.verify.races.scan_completion_races` reports
    them separately.
    """

    source: int = -1
    tag: int = -1
    wildcard_source: bool = False
    wildcard_tag: bool = False
    candidates: tuple[int, ...] = ()
    completion: bool = False


@dataclass(frozen=True)
class RequestEvent(Event):
    """Lifecycle marker of a nonblocking communication request.

    ``kind`` is ``"isend"`` or ``"irecv"``; ``op`` is ``"post"`` or
    ``"complete"``; ``req_id`` ties the two markers of one request
    together (unique per rank).  ``start == end`` — the marker is an
    instant; the virtual time the request occupied lives between its two
    markers, overlapping whatever the rank computed in between.
    """

    kind: str = "isend"
    op: str = "post"
    req_id: int = -1
    peer: int = -1
    tag: int = 0
    nbytes: int = 0


@dataclass(frozen=True)
class ComputeEvent(Event):
    """A charged compute region; ``flops`` is the useful work accounted."""

    flops: float = 0.0
    label: str = ""
