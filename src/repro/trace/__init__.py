"""Execution tracing: per-rank event logs and their analysis.

Every communication operation and charged compute region can be recorded
as an event.  The analysis helpers summarise traffic volume, message
counts, and time breakdowns — the quantities the archetype performance
models of the paper's reference [32] are built from.
"""

from repro.trace.events import CommEvent, ComputeEvent, Event, MatchEvent, RequestEvent
from repro.trace.tracer import Tracer
from repro.trace.analysis import TraceSummary, phase_breakdown, render_gantt, summarize

__all__ = [
    "Event",
    "CommEvent",
    "ComputeEvent",
    "MatchEvent",
    "RequestEvent",
    "Tracer",
    "TraceSummary",
    "summarize",
    "phase_breakdown",
    "render_gantt",
]
