"""Trace analysis: per-rank and aggregate summaries of an SPMD execution."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.events import CommEvent, ComputeEvent
from repro.trace.tracer import Tracer


@dataclass
class RankSummary:
    """Aggregate statistics for one rank's trace."""

    rank: int
    compute_time: float = 0.0
    send_time: float = 0.0
    recv_time: float = 0.0
    #: virtual time with no event in progress: gaps between this rank's
    #: events plus the tail from its last event to the run's makespan
    idle_time: float = 0.0
    flops: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    @property
    def comm_time(self) -> float:
        return self.send_time + self.recv_time


@dataclass
class TraceSummary:
    """Whole-run statistics derived from a :class:`Tracer`."""

    ranks: list[RankSummary] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return sum(r.messages_sent for r in self.ranks)

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes_sent for r in self.ranks)

    @property
    def total_bytes_received(self) -> int:
        return sum(r.bytes_received for r in self.ranks)

    @property
    def total_idle_time(self) -> float:
        return sum(r.idle_time for r in self.ranks)

    @property
    def total_flops(self) -> float:
        return sum(r.flops for r in self.ranks)

    @property
    def max_comm_time(self) -> float:
        return max((r.comm_time for r in self.ranks), default=0.0)

    @property
    def max_compute_time(self) -> float:
        return max((r.compute_time for r in self.ranks), default=0.0)

    def comm_fraction(self) -> float:
        """Fraction of the busiest-rank timeline spent communicating."""
        busiest = max(
            (r.comm_time + r.compute_time for r in self.ranks), default=0.0
        )
        return 0.0 if busiest == 0 else self.max_comm_time / busiest


def phase_breakdown(tracer: Tracer) -> dict[str, float]:
    """Total charged compute time per label across all ranks.

    Labels are the strings applications pass to ``charge``/grid ops
    (``"solve"``, ``"merge:combine"``, ``"lf-update"``, ...), so the
    breakdown maps directly onto the archetype's phases.
    """
    out: dict[str, float] = {}
    for rank in range(tracer.nprocs):
        for ev in tracer.events_for(rank):
            if isinstance(ev, ComputeEvent):
                key = ev.label or "(unlabelled)"
                out[key] = out.get(key, 0.0) + ev.duration
    return out


def render_gantt(
    tracer: Tracer, width: int = 72, compute_char: str = "#", comm_char: str = "."
) -> str:
    """ASCII Gantt chart of the run: one row per rank, virtual time on
    the x-axis; ``#`` marks charged compute, ``.`` communication
    (including waits), space idle-at-end."""
    end = max(
        (ev.end for rank in range(tracer.nprocs) for ev in tracer.events_for(rank)),
        default=0.0,
    )
    if end <= 0:
        return "(empty trace)"
    lines = [f"virtual time 0 .. {end:.4g}s ({compute_char}=compute, {comm_char}=comm)"]
    for rank in range(tracer.nprocs):
        row = [" "] * width
        for ev in tracer.events_for(rank):
            lo = int(ev.start / end * (width - 1))
            hi = max(int(ev.end / end * (width - 1)), lo)
            mark = compute_char if isinstance(ev, ComputeEvent) else comm_char
            for x in range(lo, hi + 1):
                # compute wins over comm when events round to one cell
                if row[x] != compute_char:
                    row[x] = mark
        lines.append(f"rank {rank:>3} |{''.join(row)}|")
    return "\n".join(lines)


def summarize(tracer: Tracer) -> TraceSummary:
    """Reduce a tracer's event lists to a :class:`TraceSummary`.

    Idle time is derived from the gaps the event lists leave open: the
    lead-in before a rank's first event, gaps between consecutive
    events, and the tail from its last event to the run's makespan (the
    latest end time across all ranks).
    """
    makespan = max(
        (ev.end for rank in range(tracer.nprocs) for ev in tracer.events_for(rank)),
        default=0.0,
    )
    summary = TraceSummary()
    for rank in range(tracer.nprocs):
        rs = RankSummary(rank=rank)
        cursor = 0.0
        for ev in tracer.events_for(rank):
            rs.idle_time += max(ev.start - cursor, 0.0)
            cursor = max(cursor, ev.end)
            if isinstance(ev, ComputeEvent):
                rs.compute_time += ev.duration
                rs.flops += ev.flops
            elif isinstance(ev, CommEvent):
                if ev.kind == "send":
                    rs.send_time += ev.duration
                    rs.messages_sent += 1
                    rs.bytes_sent += ev.nbytes
                else:
                    rs.recv_time += ev.duration
                    rs.messages_received += 1
                    rs.bytes_received += ev.nbytes
        rs.idle_time += max(makespan - cursor, 0.0)
        summary.ranks.append(rs)
    return summary
