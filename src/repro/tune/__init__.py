"""Autotuning: from the cost model to a tuned-config catalog.

The paper's central quantitative exercise — choosing block shapes,
process grids, and overlap strategies per (application, machine) — is
closed into a loop here: :mod:`repro.tune.space` enumerates candidate
configurations, :mod:`repro.tune.predict` prunes them with the
closed-form models of :mod:`repro.bench.predict`, :mod:`repro.tune.search`
ranks the survivors by *measured* virtual makespan (bit-for-bit
reproducible on any backend, by the cross-backend identity contract),
and :mod:`repro.tune.catalog` persists the winners where
``Archetype.run`` and the app registry find them by default.
"""

from repro.tune.catalog import TunedConfig, TunedEntry, applying, consulting, disabled
from repro.tune.search import SearchOutcome, search

__all__ = [
    "TunedConfig",
    "TunedEntry",
    "applying",
    "consulting",
    "disabled",
    "SearchOutcome",
    "search",
]
