"""Versioned on-disk catalog of tuned configurations.

One JSON file per (app, machine) under the catalog root —
``$REPRO_TUNE_DIR`` when set, else ``~/.cache/repro/tuned`` — with one
entry per rank count.  Entries record the winning :class:`TunedConfig`
together with the evidence for it (predicted and measured virtual
makespans, the default's makespan, the canonical result digest, and a
signature of the search space), so a later ``search`` over an unchanged
space is a catalog hit that re-measures nothing.

Consultation rules (enforced by :func:`consulting`):

* explicit parameters always win — ``Archetype.run(proc_grid=...)``
  never reaches the catalog, and registry callers' explicit params are
  never overridden by tuned ones;
* ``REPRO_TUNE=0`` disables lookup entirely;
* while a tuned or search configuration is being applied, nested
  consultation is a no-op, so the searcher's candidate measurements and
  registry-then-archetype double dispatch cannot stack overrides.

Applying a config is env-backed (:data:`repro.comm.cart.PROC_GRID_ENV`,
``REPRO_KERNEL_TILE_BYTES``, ``REPRO_SHM_THRESHOLD``) so forked
parallel-backend workers inherit it.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.comm.cart import proc_grid_override
from repro.obs.metrics import counter_handle

#: bump when the entry layout changes; mismatched files are ignored
SCHEMA_VERSION = 1

TUNE_ENV = "REPRO_TUNE"
DIR_ENV = "REPRO_TUNE_DIR"

_TILE_ENV = "REPRO_KERNEL_TILE_BYTES"
_SHM_ENV = "REPRO_SHM_THRESHOLD"

_HITS = counter_handle("core.tune.catalog_hits", help="catalog lookups that found an entry")
_MISSES = counter_handle("core.tune.catalog_misses", help="catalog lookups that found nothing")

#: nesting depth of applied/suppressed configuration scopes
_active = 0


def enabled() -> bool:
    """Whether tuned-config consultation is on (``REPRO_TUNE=0`` turns it off)."""
    return os.environ.get(TUNE_ENV, "1").lower() not in ("0", "false", "off")


def root() -> Path:
    """The catalog directory (not created until something is stored)."""
    override = os.environ.get(DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "tuned"


def entry_path(app: str, machine: str) -> Path:
    return root() / f"{app}--{machine}.json"


@dataclass(frozen=True)
class TunedConfig:
    """One configuration point: runtime knobs plus app-parameter overrides.

    ``None`` fields mean "leave the default alone".  *params* holds
    knobs that are app parameters (``overlap``, farm widths/windows) —
    applied by the registry's :meth:`AppSpec.run`, not by env.
    """

    proc_grid: tuple[int, ...] | None = None
    tile_bytes: int | None = None
    shm_threshold: int | None = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def is_default(self) -> bool:
        return (
            self.proc_grid is None
            and self.tile_bytes is None
            and self.shm_threshold is None
            and not self.params
        )

    def to_dict(self) -> dict:
        return {
            "proc_grid": list(self.proc_grid) if self.proc_grid else None,
            "tile_bytes": self.tile_bytes,
            "shm_threshold": self.shm_threshold,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TunedConfig":
        grid = d.get("proc_grid")
        return cls(
            proc_grid=tuple(int(x) for x in grid) if grid else None,
            tile_bytes=d.get("tile_bytes"),
            shm_threshold=d.get("shm_threshold"),
            params=dict(d.get("params") or {}),
        )

    def describe(self) -> str:
        parts = []
        if self.proc_grid:
            parts.append("grid=" + "x".join(str(d) for d in self.proc_grid))
        if self.tile_bytes is not None:
            parts.append(f"tile={self.tile_bytes}")
        if self.shm_threshold is not None:
            parts.append(f"shm={self.shm_threshold}")
        parts.extend(f"{k}={v}" for k, v in sorted(self.params.items()))
        return " ".join(parts) or "default"


@dataclass(frozen=True)
class TunedEntry:
    """A catalog record: the winning config and the evidence for it."""

    config: TunedConfig
    #: closed-form prediction for the winner (None when unpredicted)
    predicted: float | None
    #: measured virtual makespan of the winner
    measured: float
    #: measured virtual makespan of the default configuration
    default_measured: float
    #: canonical result digest (bitwise-equal to the default run's)
    digest: str
    #: digest of the searched space; an unchanged space means a re-run
    #: of ``search`` is a catalog hit
    space_signature: str

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "predicted": self.predicted,
            "measured": self.measured,
            "default_measured": self.default_measured,
            "digest": self.digest,
            "space_signature": self.space_signature,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TunedEntry":
        return cls(
            config=TunedConfig.from_dict(d["config"]),
            predicted=d.get("predicted"),
            measured=float(d["measured"]),
            default_measured=float(d["default_measured"]),
            digest=str(d["digest"]),
            space_signature=str(d["space_signature"]),
        )


def load(app: str, machine: str) -> dict[str, TunedEntry]:
    """All entries for (app, machine), keyed by rank count (as a string).

    Missing, corrupt, or schema-mismatched files read as empty — a stale
    catalog can degrade to defaults but never break a run.
    """
    path = entry_path(app, machine)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_VERSION:
        return {}
    out: dict[str, TunedEntry] = {}
    for key, raw in (doc.get("entries") or {}).items():
        try:
            out[str(key)] = TunedEntry.from_dict(raw)
        except (KeyError, TypeError, ValueError):
            continue
    return out


def store(app: str, machine: str, nprocs: int, entry: TunedEntry) -> Path:
    """Merge *entry* into the (app, machine) file; atomic replace."""
    entries = load(app, machine)
    entries[str(nprocs)] = entry
    doc = {
        "schema": SCHEMA_VERSION,
        "app": app,
        "machine": machine,
        "entries": {k: e.to_dict() for k, e in sorted(entries.items())},
    }
    path = entry_path(app, machine)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def lookup(app: str, machine: str, nprocs: int) -> TunedEntry | None:
    """The stored entry for (app, machine, nprocs), if any."""
    return load(app, machine).get(str(nprocs))


def active() -> bool:
    """Whether a configuration scope (applied or suppressed) is open."""
    return _active > 0


@contextmanager
def _scope() -> Iterator[None]:
    global _active
    _active += 1
    try:
        yield
    finally:
        _active -= 1


@contextmanager
def _env_override(name: str, value: int | None) -> Iterator[None]:
    if value is None:
        yield
        return
    prev = os.environ.get(name)
    os.environ[name] = str(int(value))
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = prev


@contextmanager
def applying(config: TunedConfig) -> Iterator[None]:
    """Apply *config*'s runtime knobs for the scope (env-backed, so the
    parallel backend's forked workers see them); suppresses nested
    catalog consultation."""
    with _scope():
        with proc_grid_override(config.proc_grid):
            with _env_override(_TILE_ENV, config.tile_bytes):
                with _env_override(_SHM_ENV, config.shm_threshold):
                    yield


@contextmanager
def disabled() -> Iterator[None]:
    """Suppress catalog consultation for the scope without applying
    anything — the searcher measures baselines and candidates here so a
    previously-stored winner can never contaminate a measurement."""
    with _scope():
        yield


def consult(app: str, machine: str, nprocs: int) -> TunedEntry | None:
    """Catalog lookup honouring the consultation rules (with counters)."""
    if not enabled() or active():
        return None
    entry = lookup(app, machine, nprocs)
    if entry is None:
        _MISSES.inc()
    else:
        _HITS.inc()
    return entry


def consulting(app: str, machine: str, nprocs: int):
    """Context manager applying the tuned config for (app, machine,
    nprocs) when one exists and consultation is allowed; a no-op scope
    otherwise.  This is ``Archetype.run``'s entry point."""
    entry = consult(app, machine, nprocs)
    if entry is None:
        import contextlib

        return contextlib.nullcontext()
    return applying(entry.config)
