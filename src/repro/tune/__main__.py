"""Autotuner CLI.

::

    python -m repro.tune search --app poisson,fft2d --machine numa-epyc,cloud-25gbe
    python -m repro.tune show
    python -m repro.tune apply --app poisson --machine cloud-25gbe --nprocs 4
    python -m repro.tune smoke          # (also: python -m repro.tune --smoke)

``search`` tunes and persists winners; ``show`` prints the catalog;
``apply`` emits shell ``export`` lines for a stored winner (for running
outside the simulator harness, e.g. under ``REPRO_BACKEND=parallel``);
``smoke`` is the CI gate: a tiny end-to-end search that asserts a
catalog entry is written, a re-run is a catalog hit that measures
nothing, and the tuned configuration reproduces the untuned run's
canonical digest bit-for-bit.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.tune import catalog
from repro.tune.search import SearchOutcome, search


def _parse_override(text: str) -> tuple[str, object]:
    key, sep, raw = text.partition("=")
    if not sep:
        raise SystemExit(f"--param wants key=value, got {text!r}")
    try:
        return key, json.loads(raw)
    except ValueError:
        return key, raw


def _print_outcome(outcome: SearchOutcome, verbose: bool) -> None:
    e = outcome.entry
    tag = "catalog hit" if outcome.cache_hit else "searched"
    counts = outcome.counts()
    print(
        f"{outcome.app} @ {outcome.machine} (P={outcome.nprocs}): "
        f"{e.config.describe()}  makespan {e.measured:.6g} "
        f"(default {e.default_measured:.6g}, speedup {outcome.speedup:.3f}x) "
        f"[{tag}]"
    )
    if not outcome.cache_hit:
        line = (
            f"  candidates: {counts['generated']} generated, "
            f"{counts['pruned']} pruned, {counts['measured']} measured, "
            f"{counts['rejected']} digest-rejected"
        )
        if outcome.prune_accuracy is not None:
            line += f", prune accuracy {outcome.prune_accuracy:.2f}"
        print(line)
    if verbose:
        for r in outcome.reports:
            measured = "-" if r.measured is None else f"{r.measured:.6g}"
            predicted = "-" if r.predicted is None else f"{r.predicted:.6g}"
            print(
                f"    {r.status:>13}  predicted {predicted:>12}  "
                f"measured {measured:>12}  {r.config.describe()}"
            )


def _cmd_search(args: argparse.Namespace) -> int:
    overrides = dict(_parse_override(t) for t in args.param or [])
    for app in args.app.split(","):
        for machine in args.machine.split(","):
            outcome = search(
                app.strip(),
                machine.strip(),
                nprocs=args.nprocs,
                overrides=overrides or None,
                mode=args.mode,
                exhaustive=args.exhaustive,
                force=args.force,
            )
            _print_outcome(outcome, args.verbose)
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    root = catalog.root()
    files = sorted(root.glob("*.json")) if root.is_dir() else []
    shown = 0
    for path in files:
        app, sep, machine = path.stem.partition("--")
        if not sep:
            continue
        if args.app and app != args.app:
            continue
        if args.machine and machine != args.machine:
            continue
        for nprocs, entry in sorted(catalog.load(app, machine).items()):
            print(
                f"{app} @ {machine} (P={nprocs}): {entry.config.describe()}  "
                f"makespan {entry.measured:.6g} "
                f"(default {entry.default_measured:.6g})"
            )
            shown += 1
    if not shown:
        print(f"no tuned entries under {root}")
    return 0


def _cmd_apply(args: argparse.Namespace) -> int:
    entry = catalog.lookup(args.app, args.machine, args.nprocs)
    if entry is None:
        print(
            f"no entry for {args.app} @ {args.machine} (P={args.nprocs}); "
            "run `python -m repro.tune search` first",
            file=sys.stderr,
        )
        return 1
    cfg = entry.config
    if cfg.proc_grid:
        print("export REPRO_PROC_GRID=" + "x".join(str(d) for d in cfg.proc_grid))
    if cfg.tile_bytes is not None:
        print(f"export REPRO_KERNEL_TILE_BYTES={cfg.tile_bytes}")
    if cfg.shm_threshold is not None:
        print(f"export REPRO_SHM_THRESHOLD={cfg.shm_threshold}")
    for key, value in sorted(cfg.params.items()):
        print(f"# app parameter: {key}={json.dumps(value)}")
    if cfg.is_default():
        print("# tuned winner is the default configuration; nothing to export")
    return 0


# reduced problem sizes so the smoke search stays in CI-seconds territory
_SMOKE_POISSON = {"nx": 16, "ny": 16, "max_iters": 2}
_SMOKE_FFT2D = {"rows": 16, "cols": 16, "repeats": 1}
_SMOKE_MACHINES = ("numa-epyc", "cloud-25gbe")


def _cmd_smoke(args: argparse.Namespace) -> int:
    from repro.apps import registry
    from repro.tune.space import canonical_digest

    def check(label: str, ok: bool) -> None:
        print(("PASS " if ok else "FAIL ") + label)
        if not ok:
            raise SystemExit(1)

    with tempfile.TemporaryDirectory(prefix="repro-tune-smoke-") as tmp:
        if not os.environ.get(catalog.DIR_ENV):
            os.environ[catalog.DIR_ENV] = tmp
        plan = [("poisson", _SMOKE_POISSON, m) for m in _SMOKE_MACHINES]
        plan.append(("fft2d", _SMOKE_FFT2D, _SMOKE_MACHINES[0]))
        for app, overrides, machine in plan:
            first = search(app, machine, overrides=overrides, exhaustive=True)
            check(
                f"{app} @ {machine}: catalog entry written",
                catalog.entry_path(app, machine).is_file()
                and not first.cache_hit,
            )
            check(
                f"{app} @ {machine}: tuned makespan <= default "
                f"({first.entry.measured:.6g} vs {first.entry.default_measured:.6g})",
                first.entry.measured <= first.entry.default_measured,
            )
            second = search(app, machine, overrides=overrides, exhaustive=True)
            check(
                f"{app} @ {machine}: re-run is a catalog hit (no re-measuring)",
                second.cache_hit and not second.reports,
            )
            # End-to-end digest check through the public consultation
            # path: a registry run that picks up the tuned config must
            # reproduce the untuned run's canonical value bit-for-bit.
            spec = registry.get(app)
            tuned_run = spec.run(overrides, machine=machine)
            with catalog.disabled():
                default_run = spec.run(overrides, machine=machine)
            check(
                f"{app} @ {machine}: tuned run digest == untuned run digest",
                canonical_digest(spec, tuned_run)
                == canonical_digest(spec, default_run),
            )
    print("tune smoke: all checks passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--smoke" in argv:  # flag alias for the smoke subcommand
        argv = ["smoke"]
    parser = argparse.ArgumentParser(prog="python -m repro.tune", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("search", help="tune apps for machines, persist winners")
    p.add_argument("--app", default="poisson,fft2d", help="comma-separated app names")
    p.add_argument(
        "--machine", default="numa-epyc,cloud-25gbe", help="comma-separated machines"
    )
    p.add_argument("--nprocs", type=int, default=None, help="rank count to tune for")
    p.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        help="app parameter override (repeatable)",
    )
    p.add_argument(
        "--mode",
        choices=("sequential", "parallel", "threads"),
        default="sequential",
        help="backend for candidate measurement (rankings are identical)",
    )
    p.add_argument(
        "--exhaustive",
        action="store_true",
        help="measure pruned candidates too and score the pruner",
    )
    p.add_argument("--force", action="store_true", help="re-measure on catalog hits")
    p.add_argument("--verbose", action="store_true", help="per-candidate report")
    p.set_defaults(fn=_cmd_search)

    p = sub.add_parser("show", help="print the tuned-config catalog")
    p.add_argument("--app", default=None)
    p.add_argument("--machine", default=None)
    p.set_defaults(fn=_cmd_show)

    p = sub.add_parser("apply", help="emit export lines for a stored winner")
    p.add_argument("--app", required=True)
    p.add_argument("--machine", required=True)
    p.add_argument("--nprocs", type=int, default=4)
    p.set_defaults(fn=_cmd_apply)

    p = sub.add_parser("smoke", help="CI smoke: search, hit, digest checks")
    p.set_defaults(fn=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
