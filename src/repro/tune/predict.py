"""Closed-form predictions for candidate configurations.

Bridges the tuner to :mod:`repro.bench.predict`: each predictable app
maps its parameter dict plus a candidate's knobs onto the corresponding
analytic T(P) model.  Apps without a closed form return ``None`` and are
never pruned — the searcher measures them all, which is the honest
fallback when no model exists.

Kernel tile bytes and shm thresholds are host wall-clock knobs the
virtual clock cannot see, so candidates varying only those inherit the
base prediction unchanged.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.apps.registry import AppSpec
from repro.machines.model import MachineModel
from repro.tune.catalog import TunedConfig

#: survivors are candidates predicted within this factor of the best
#: prediction — wide enough to absorb the skew/wait effects the closed
#: forms ignore (the test suite holds model-vs-simulator agreement to
#: ~10%), tight enough to discard clearly-lost grid shapes
PRUNE_SLACK = 1.15


def predict_candidate(
    spec: AppSpec,
    params: Mapping[str, Any],
    machine: MachineModel,
    config: TunedConfig,
) -> float | None:
    """Predicted virtual makespan of *config*, or ``None`` (no model)."""
    p = dict(params)
    p.update(config.params)
    grid = config.proc_grid
    name = spec.name
    if name == "poisson":
        from repro.bench.predict import predict_poisson

        return predict_poisson(
            p["nx"],
            p["ny"],
            p["max_iters"],
            p["nprocs"],
            machine,
            proc_grid=grid,
            overlap=p.get("overlap", True),
        )
    if name == "cfd":
        from repro.bench.predict import predict_cfd

        return predict_cfd(
            p["nx"],
            p["ny"],
            p["steps"],
            p["nprocs"],
            machine,
            proc_grid=grid,
            cfl_interval=p.get("cfl_interval", 1),
            overlap=p.get("overlap", True),
        )
    if name == "smog":
        from repro.bench.predict import predict_smog

        return predict_smog(
            p["nx"],
            p["ny"],
            p["steps"],
            p["nprocs"],
            machine,
            chem_substeps=p.get("chem_substeps", 4),
            proc_grid=grid,
            overlap=True,
        )
    if name == "fft2d":
        from repro.bench.predict import predict_fft2d

        return predict_fft2d(
            p["rows"], p["cols"], p["repeats"], p["nprocs"], machine, gather=True
        )
    if name == "mergesort":
        from repro.bench.predict import predict_onedeep_sort

        return predict_onedeep_sort(p["n"], p["nprocs"], machine)
    return None


def prune(predictions: list[float | None]) -> list[bool]:
    """Keep-flags per candidate: candidate 0 (the default) and every
    unpredicted candidate always survive; predicted candidates survive
    within :data:`PRUNE_SLACK` of the best prediction."""
    finite = [p for p in predictions if p is not None]
    cutoff = PRUNE_SLACK * min(finite) if finite else None
    keep = []
    for i, p in enumerate(predictions):
        keep.append(i == 0 or p is None or p <= cutoff)
    return keep
