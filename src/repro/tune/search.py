"""The search driver: predict, prune, measure, rank, persist.

``search(app, machine)`` enumerates the app's candidate space, prunes
it with the closed-form predictions, measures the survivors' *virtual*
makespans, and persists the winner to the catalog.  Three properties
make the loop trustworthy:

* **Reproducible rankings.**  Candidates are ranked by simulated time,
  which the cross-backend identity contract makes bit-for-bit equal on
  every backend — so ``mode="parallel"`` buys real multi-core wall-clock
  for the search itself without perturbing a single ranking, and ties
  break by candidate order (default first).
* **A correctness contract.**  A candidate is admissible only if its
  canonical result digest is bitwise-equal to the default
  configuration's.  This is what keeps e.g. FDTD's partition-sensitive
  SUM reduction out of trouble: its proc-grid candidates are measured,
  found digest-divergent, and rejected (counted by
  ``core.tune.digest_rejects``).
* **Hit-don't-rerun.**  The winning entry stores a signature of the
  searched space; a later search over an unchanged space returns the
  stored entry without measuring anything.

Measurements run inside :func:`repro.tune.catalog.disabled`-style
scopes (``applying`` suppresses nested consultation), so a stored
winner can never contaminate the baseline it is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.apps import registry
from repro.machines.catalog import get_machine
from repro.machines.model import MachineModel
from repro.obs.metrics import counter_handle, gauge_handle
from repro.tune import catalog
from repro.tune.catalog import TunedConfig, TunedEntry
from repro.tune.predict import predict_candidate, prune
from repro.tune.space import build_space, canonical_digest, space_signature

_GENERATED = counter_handle(
    "core.tune.candidates_generated", help="candidate configs enumerated"
)
_PRUNED = counter_handle(
    "core.tune.candidates_pruned", help="candidates discarded by the cost model"
)
_MEASURED = counter_handle(
    "core.tune.candidates_measured", help="candidates measured on the simulator"
)
_REJECTS = counter_handle(
    "core.tune.digest_rejects", help="candidates rejected for digest divergence"
)
_ACCURACY = gauge_handle(
    "core.tune.prune_accuracy",
    help="fraction of pruned candidates verified no better than the winner "
    "(exhaustive searches only)",
)

#: candidate dispositions, in the order they are decided
PRUNED, MEASURED, REJECTED, WINNER = "pruned", "measured", "digest-reject", "winner"


@dataclass(frozen=True)
class CandidateReport:
    """One candidate's fate in a search."""

    config: TunedConfig
    predicted: float | None
    measured: float | None
    status: str


@dataclass(frozen=True)
class SearchOutcome:
    """Everything a caller (CLI, bench, tests) needs about one search."""

    app: str
    machine: str
    nprocs: int
    entry: TunedEntry
    #: True when the persisted catalog answered without re-measuring
    cache_hit: bool
    reports: tuple[CandidateReport, ...]
    #: pruned-correctly fraction; None unless the search was exhaustive
    prune_accuracy: float | None

    @property
    def speedup(self) -> float:
        """default makespan / tuned makespan (>= 1.0 by construction)."""
        return self.entry.default_measured / self.entry.measured

    def counts(self) -> dict[str, int]:
        out = {"generated": len(self.reports), "pruned": 0, "measured": 0, "rejected": 0}
        for r in self.reports:
            if r.status == PRUNED:
                out["pruned"] += 1
            elif r.status == REJECTED:
                out["rejected"] += 1
            else:
                out["measured"] += 1
        return out


def _measure(
    spec: registry.AppSpec,
    params: Mapping[str, Any],
    machine: MachineModel,
    config: TunedConfig,
    mode: str,
) -> tuple[float, str]:
    """(virtual makespan, canonical digest) of one candidate run."""
    run_params = dict(params)
    run_params.update(config.params)
    with catalog.applying(config):
        result = spec.run(run_params, machine=machine, mode=mode)
    return result.elapsed, canonical_digest(spec, result)


def search(
    app: str,
    machine: MachineModel | str,
    *,
    nprocs: int | None = None,
    overrides: Mapping[str, Any] | None = None,
    mode: str = "sequential",
    exhaustive: bool = False,
    force: bool = False,
) -> SearchOutcome:
    """Tune *app* for *machine* and persist the winner.

    ``mode="parallel"`` runs each measurement on the multi-process
    backend (same virtual clocks, real wall-clock speedup);
    ``exhaustive=True`` measures pruned candidates too and scores the
    pruner (``core.tune.prune_accuracy``); ``force=True`` re-measures
    even when the catalog already answers the search.
    """
    spec = registry.get(app)
    if isinstance(machine, str):
        machine = get_machine(machine)
    merged_overrides = dict(overrides or {})
    if nprocs is not None and "nprocs" in spec.defaults:
        merged_overrides["nprocs"] = nprocs
    params = spec.params_with(merged_overrides)
    key_nprocs = int(params.get("nprocs", 0))

    space = build_space(spec, params)
    signature = space_signature(catalog.SCHEMA_VERSION, spec, params, space)

    existing = catalog.lookup(spec.name, machine.name, key_nprocs)
    if existing is not None and existing.space_signature == signature and not force:
        return SearchOutcome(
            app=spec.name,
            machine=machine.name,
            nprocs=key_nprocs,
            entry=existing,
            cache_hit=True,
            reports=(),
            prune_accuracy=None,
        )

    _GENERATED.inc(len(space))
    predictions = [predict_candidate(spec, params, machine, c) for c in space]
    keep = prune(predictions)
    _PRUNED.inc(keep.count(False))

    default_measured, default_digest = _measure(spec, params, machine, space[0], mode)
    _MEASURED.inc()

    reports: list[CandidateReport] = [
        CandidateReport(space[0], predictions[0], default_measured, MEASURED)
    ]
    best_idx, best_measured = 0, default_measured
    audited: list[tuple[float, str]] = []  # exhaustive-mode pruned candidates
    for i in range(1, len(space)):
        if not keep[i] and not exhaustive:
            reports.append(CandidateReport(space[i], predictions[i], None, PRUNED))
            continue
        measured, digest = _measure(spec, params, machine, space[i], mode)
        _MEASURED.inc()
        if digest != default_digest:
            _REJECTS.inc()
            status = REJECTED
        elif not keep[i]:
            # exhaustive-mode audit of a pruned candidate: score the
            # pruner, but never let a pruned candidate win
            status = PRUNED
        else:
            status = MEASURED
            if measured < best_measured:
                best_idx, best_measured = i, measured
        if not keep[i]:
            audited.append((measured, status))
        reports.append(CandidateReport(space[i], predictions[i], measured, status))

    accuracy = None
    if exhaustive and audited:
        # A prune was correct if the discarded candidate could not have
        # won: measured no better than the final winner, or inadmissible.
        ok = sum(1 for m, s in audited if s == REJECTED or m >= best_measured)
        accuracy = ok / len(audited)
        _ACCURACY.set(accuracy)

    reports[best_idx] = CandidateReport(
        space[best_idx], predictions[best_idx], best_measured, WINNER
    )
    entry = TunedEntry(
        config=space[best_idx],
        predicted=predictions[best_idx],
        measured=best_measured,
        default_measured=default_measured,
        digest=default_digest,
        space_signature=signature,
    )
    catalog.store(spec.name, machine.name, key_nprocs, entry)
    return SearchOutcome(
        app=spec.name,
        machine=machine.name,
        nprocs=key_nprocs,
        entry=entry,
        cache_hit=False,
        reports=tuple(reports),
        prune_accuracy=accuracy,
    )
