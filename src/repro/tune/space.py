"""Candidate-configuration spaces per application.

The space builder turns an :class:`~repro.apps.registry.AppSpec` into an
ordered list of :class:`~repro.tune.catalog.TunedConfig` candidates.
Candidate 0 is always the default (empty) config, and ordering is part
of the search contract: ranking ties break toward the earliest
candidate, so the default wins any tie and knob variants that cannot
move the virtual makespan (kernel tile bytes, shm thresholds — host
wall-clock knobs invisible to the virtual clock) never displace it.

Mesh apps get every divisor-pair process grid for their rank count,
crossed with ``overlap`` on/off where the app exposes that parameter,
plus tile/shm variants of the default point.  Ghost widths are fixed by
each stencil's radius (all current mesh apps are one-deep), so no ghost
candidates are emitted.  Pipeline-farm apps get farm-width x
credit-window grids — those change the virtual makespan directly.

The module also defines the *canonical digest* used for the tuner's
correctness contract: a candidate is admissible only when its canonical
digest is bitwise-equal to the default run's.  For pipeline-farm apps
the canonical value is the width-invariant sorted per-item digest of
the collector output; for everything else it is the full per-rank value
list, the strictest invariant the app family supports.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.apps.registry import AppSpec
from repro.runtime.spmd import RunResult
from repro.tune.catalog import TunedConfig
from repro.verify.digest import value_digest

#: kernel-tile footprints tried around the 4 MiB default
TILE_CANDIDATES = (1 << 20, 1 << 24)
#: shared-memory transport thresholds tried around the 32 KiB default
SHM_CANDIDATES = (4096, 262144)
#: farm widths tried (capped by the app's default-derived maximum)
FARM_WIDTHS = (1, 2, 3, 4)
#: credit-window sizes tried per width
FARM_WINDOWS = (1, 2, 4)


def _divisor_grids(nprocs: int, ndim: int) -> list[tuple[int, ...]]:
    """All *ndim*-dimensional factorisations of *nprocs*, lexicographically
    descending (widest leading axis first)."""
    if ndim == 1:
        return [(nprocs,)]
    out = []
    for d in range(nprocs, 0, -1):
        if nprocs % d == 0:
            out.extend((d, *rest) for rest in _divisor_grids(nprocs // d, ndim - 1))
    return out


def build_space(spec: AppSpec, params: Mapping[str, Any]) -> list[TunedConfig]:
    """Ordered candidate configs for *spec* run at *params*."""
    candidates = [TunedConfig()]
    if spec.archetype == "pipeline-farm":
        width_key = "workers" if "workers" in spec.defaults else "width"
        items = int(params.get("items", params.get("instances", 0)) or 0)
        for width in FARM_WIDTHS:
            if items and width > items:
                continue
            for window in FARM_WINDOWS:
                cfg = TunedConfig(params={width_key: width, "window": window})
                if cfg.params != {
                    width_key: params[width_key],
                    "window": params["window"],
                }:
                    candidates.append(cfg)
        return candidates

    from repro.comm.cart import choose_proc_grid

    nprocs = int(params.get("nprocs", 1))
    # The candidate grids must match the app's data dimensionality — an
    # override whose length differs from the grid's ndim never applies.
    ndim = 3 if "nz" in spec.defaults else 2
    default_grid = choose_proc_grid(nprocs, ndim)
    overlaps: tuple[Any, ...] = (None,)
    if "overlap" in spec.defaults:
        overlaps = (None, not bool(params["overlap"]))
    for grid in _divisor_grids(nprocs, ndim):
        for overlap in overlaps:
            if grid == default_grid and overlap is None:
                continue  # identical to candidate 0
            candidates.append(
                TunedConfig(
                    proc_grid=grid,
                    params={} if overlap is None else {"overlap": overlap},
                )
            )
    for tile in TILE_CANDIDATES:
        candidates.append(TunedConfig(tile_bytes=tile))
    for shm in SHM_CANDIDATES:
        candidates.append(TunedConfig(shm_threshold=shm))
    return candidates


def space_signature(
    schema: int, spec: AppSpec, params: Mapping[str, Any], space: list[TunedConfig]
) -> str:
    """Digest identifying a search: same app, params, and candidate set
    mean a stored entry answers the search without re-measuring."""
    return value_digest(
        [
            schema,
            spec.name,
            sorted((k, params[k]) for k in params),
            [c.to_dict() for c in space],
        ]
    )


def canonical_digest(spec: AppSpec, result: RunResult) -> str:
    """The app-family invariant a tuned config must preserve bitwise."""
    if spec.archetype == "pipeline-farm":
        items = result.values[-1]
        return value_digest(sorted(value_digest(item) for item in items))
    return value_digest(result.values)
